"""Measurement probes for simulated experiments.

The paper's figures plot per-interval throughput, latency percentiles
and CPU utilisation against runtime.  :class:`Counter` accumulates
discrete occurrences (operations, bytes) and can be folded into
per-interval rates; :class:`Series` records raw ``(time, value)``
samples; :class:`UtilisationProbe` integrates busy time of a server.

Retention bounds
----------------
By default probes keep every sample forever, which is right for the
paper's fixed-duration figure runs but grows without bound under long
chaos sweeps and the always-on metrics registry
(:mod:`repro.obs.metrics`).  Both :class:`Counter` and :class:`Series`
therefore take optional retention bounds:

``window`` (seconds of virtual time)
    Samples older than ``now - window`` are discarded as new samples
    arrive.
``max_samples`` (count)
    At most the newest ``max_samples`` samples are retained.

``Counter.total`` remains the *lifetime* total regardless of retention;
range queries (``rate_between``, ``between``, ``percentile``...) only
see retained samples.  Eviction is amortised O(1) per record: a logical
start offset advances cheaply and the backing lists are compacted only
once the dead prefix dominates.

Windowed instruments also re-evaluate the window at *read* time.
Eviction used to happen only inside ``record()``, so a windowed
histogram that stopped receiving samples kept reporting the stale tail
forever -- a controller polling ``percentile(99)`` on an idle stream
would read the last storm's latencies instead of "no samples".  Reads
(``values``, ``len``, ``percentile``, ``rate_between``...) now advance
the live-start against the current virtual time first.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Sequence

from .core import Environment

__all__ = ["Counter", "Series", "UtilisationProbe", "percentile"]

# Compact the backing lists only when at least this many dead slots
# exist *and* they outnumber the live ones (amortised O(1) eviction).
_COMPACT_MIN = 256


def percentile(samples: Sequence[float], pct: float) -> float:
    """Return the ``pct``-th percentile of ``samples`` (nearest-rank).

    Raises ``ValueError`` on an empty sample set: an experiment that
    measured nothing should fail loudly, not report 0 latency.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 < pct <= 100:
        raise ValueError(f"percentile {pct} out of (0, 100]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


class _BoundedSamples:
    """Shared retention machinery for Counter and Series."""

    def __init__(
        self,
        env: Environment,
        window: Optional[float],
        max_samples: Optional[int],
    ):
        if window is not None and window <= 0:
            raise ValueError("window must be positive or None")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive or None")
        self.env = env
        self.window = window
        self.max_samples = max_samples
        self._times: list[float] = []
        self._start = 0                 # first live index

    def __len__(self) -> int:
        self._refresh()
        return len(self._times) - self._start

    def _refresh(self) -> None:
        """Apply window retention at read time: samples that aged out
        since the last ``record`` must not leak into reads."""
        if self.window is not None and len(self._times) > self._start:
            self._evict()

    def _columns(self) -> tuple[list, ...]:
        """The sample columns to evict/compact alongside ``_times``."""
        return (self._times,)

    def _evict(self) -> None:
        """Advance the live-start past expired/overflow samples."""
        start = self._start
        if self.window is not None:
            cutoff = self.env.now - self.window
            start = bisect.bisect_left(self._times, cutoff, start)
        if self.max_samples is not None:
            overflow = len(self._times) - start - self.max_samples
            if overflow > 0:
                start += overflow
        if start == self._start:
            return
        self._start = start
        if start >= _COMPACT_MIN and start * 2 >= len(self._times):
            for column in self._columns():
                del column[:start]
            self._start = 0

    def _lo(self, t: float) -> int:
        return max(bisect.bisect_left(self._times, t), self._start)

    def _hi(self, t: float) -> int:
        return max(bisect.bisect_left(self._times, t), self._start)


class Counter(_BoundedSamples):
    """Counts timestamped occurrences, e.g. completed operations."""

    def __init__(
        self,
        env: Environment,
        name: str = "",
        window: Optional[float] = None,
        max_samples: Optional[int] = None,
    ):
        super().__init__(env, window, max_samples)
        self.name = name
        self._weights: list[float] = []
        self._total = 0.0

    def _columns(self):
        return (self._times, self._weights)

    def record(self, weight: float = 1.0) -> None:
        """Record ``weight`` occurrences at the current instant."""
        self._times.append(self.env._now)
        self._weights.append(weight)
        self._total += weight
        if self.window is not None or self.max_samples is not None:
            self._evict()

    @property
    def total(self) -> float:
        """Lifetime total, unaffected by retention bounds."""
        return self._total

    def rate_between(self, start: float, end: float) -> float:
        """Average rate (occurrences / time unit) over ``[start, end)``.

        Only retained samples contribute (see the module notes on
        retention bounds).
        """
        if end <= start:
            raise ValueError("end must be after start")
        self._refresh()
        lo = self._lo(start)
        hi = self._hi(end)
        return sum(self._weights[lo:hi]) / (end - start)

    def interval_rates(
        self, interval: float, start: float = 0.0, end: Optional[float] = None
    ) -> list[tuple[float, float]]:
        """Fold occurrences into consecutive intervals.

        Returns ``[(interval_start, rate), ...]`` covering
        ``[start, end)``; ``end`` defaults to the current instant.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        stop = self.env.now if end is None else end
        points = []
        t = start
        while t < stop:
            t_next = min(t + interval, stop)
            points.append((t, self.rate_between(t, t_next)))
            t = t + interval
        return points


class Series(_BoundedSamples):
    """Raw ``(time, value)`` samples, e.g. per-request latencies."""

    def __init__(
        self,
        env: Environment,
        name: str = "",
        window: Optional[float] = None,
        max_samples: Optional[int] = None,
    ):
        super().__init__(env, window, max_samples)
        self.name = name
        self._values: list[float] = []

    def _columns(self):
        return (self._times, self._values)

    def record(self, value: float) -> None:
        self._times.append(self.env._now)
        self._values.append(value)
        if self.window is not None or self.max_samples is not None:
            self._evict()

    @property
    def values(self) -> tuple[float, ...]:
        self._refresh()
        return tuple(self._values[self._start:])

    @property
    def times(self) -> tuple[float, ...]:
        self._refresh()
        return tuple(self._times[self._start:])

    def between(self, start: float, end: float) -> list[float]:
        """Values sampled in ``[start, end)`` (retained samples only)."""
        self._refresh()
        lo = self._lo(start)
        hi = self._hi(end)
        return self._values[lo:hi]

    def percentile(self, pct: float) -> float:
        return percentile(self.values, pct)

    def mean(self) -> float:
        values = self.values
        if not values:
            raise ValueError("no samples")
        return sum(values) / len(values)


class UtilisationProbe:
    """Integrates the busy time of a server to report CPU utilisation."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._busy_since: Optional[float] = None
        self._episodes: list[tuple[float, float]] = []

    def busy(self) -> None:
        """Mark the server busy from now on (idempotent)."""
        if self._busy_since is None:
            self._busy_since = self.env._now

    def idle(self) -> None:
        """Mark the server idle from now on (idempotent)."""
        if self._busy_since is not None:
            self._episodes.append((self._busy_since, self.env._now))
            self._busy_since = None

    def utilisation_between(self, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` spent busy, in ``[0, 1]``."""
        if end <= start:
            raise ValueError("end must be after start")
        episodes: Iterable[tuple[float, float]] = self._episodes
        if self._busy_since is not None:
            episodes = list(self._episodes) + [(self._busy_since, self.env.now)]
        busy = 0.0
        for b, e in episodes:
            busy += max(0.0, min(e, end) - max(b, start))
        return busy / (end - start)

    def interval_utilisation(
        self, interval: float, start: float = 0.0, end: Optional[float] = None
    ) -> list[tuple[float, float]]:
        """Per-interval utilisation points, mirroring Counter.interval_rates."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        stop = self.env.now if end is None else end
        points = []
        t = start
        while t < stop:
            points.append((t, self.utilisation_between(t, min(t + interval, stop))))
            t += interval
        return points
