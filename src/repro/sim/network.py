"""Simulated message-passing network.

Models the virtualized, TCP-tunnelled network of the paper's OpenStack
deployment:

* per-link propagation latency (base + optional seeded jitter),
* per-link serialisation bandwidth (a link transmits one message at a
  time, so saturated links queue -- this is what caps a Paxos stream's
  throughput),
* FIFO per-link delivery (TCP ordering),
* lossy links and network partitions for fault injection,
* crashed hosts silently drop traffic, as a crashed OS would.

Hosts are looked up by name.  Each host owns an unbounded inbox
(:class:`repro.sim.queues.Store`) from which its actor processes drain
:class:`Envelope` objects.

Hot path: :meth:`Network.send` compiles the per-``(src, dst)`` routing
decision -- host objects, link spec, matching fault rules, partition
membership -- into a cached dispatch entry the first time a pair is
used, so the common no-fault send is one dict hit instead of a rule
scan.  Every mutation of the routing state (``set_link``, ``add_fault``
/ ``remove_fault``, ``partition`` / ``unpartition`` / ``heal``)
invalidates the cache.  The order of RNG draws is identical to the
uncompiled path, so seeded runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from heapq import heappush

from ..runtime.kernel import Envelope
from .core import Environment, _ScheduledCall
from .queues import Store
from .rng import RngRegistry

__all__ = ["Envelope", "FaultRule", "Host", "Network", "LinkSpec"]


_tuple_new = tuple.__new__


@dataclass(slots=True)
class LinkSpec:
    """Transmission characteristics of a directed link."""

    latency: float = 0.0005          # one-way propagation delay (seconds)
    jitter: float = 0.0              # max uniform jitter added to latency
    bandwidth: Optional[float] = None  # bytes/second; None = infinite
    loss: float = 0.0                # independent drop probability


@dataclass(slots=True)
class FaultRule:
    """A transient fault overlay applied on top of the link specs.

    Rules are installed/removed dynamically (the fault orchestrator uses
    them to realise loss windows, delay spikes, duplication and
    reordering windows).  ``src``/``dst`` restrict the rule to matching
    directed traffic; ``None`` matches any host.

    Duplicated and reordered copies model datagram-level anomalies and
    deliberately bypass the per-link TCP FIFO guarantee -- that is the
    point of injecting them.
    """

    src: Optional[frozenset[str]] = None   # None = any sender
    dst: Optional[frozenset[str]] = None   # None = any receiver
    loss: float = 0.0                      # extra drop probability
    extra_latency: float = 0.0             # added propagation delay
    duplicate: float = 0.0                 # probability of a second copy
    reorder: float = 0.0                   # probability FIFO is bypassed
    reorder_spread: float = 0.01           # max lead/lag of a reordered msg

    @staticmethod
    def _selector(names: Optional[Iterable[str]]) -> Optional[frozenset[str]]:
        if names is None:
            return None
        if isinstance(names, str):
            return frozenset((names,))
        return frozenset(names)

    def __post_init__(self) -> None:
        self.src = self._selector(self.src)
        self.dst = self._selector(self.dst)

    def matches(self, src: str, dst: str) -> bool:
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        return True


class Host:
    """A named node with an inbox and a crash flag.

    ``incarnation`` counts reboots: it is bumped on every crash so the
    network can discard envelopes that were in flight across a crash
    (a rebooted OS resets its TCP connections; packets of the old
    incarnation never reach the new process).
    """

    __slots__ = ("env", "name", "inbox", "crashed", "incarnation", "actor")

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.inbox: Store = Store(env)
        self.crashed = False
        self.incarnation = 0
        # Back-reference to the protocol actor bound to this host (set
        # by net.actor.Actor); fault injectors use it to crash the
        # process, not just the box.
        self.actor: Optional[Any] = None

    def crash(self) -> None:
        """Crash the host: drop its queued inbox and future traffic."""
        self.crashed = True
        self.incarnation += 1
        self.inbox = Store(self.env)

    def recover(self) -> None:
        """Bring the host back with an empty inbox (volatile state lost)."""
        self.crashed = False
        self.inbox = Store(self.env)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<Host {self.name} ({state})>"


class _LinkState:
    """Mutable per-directed-link serialisation & FIFO state.

    Lives in a persistent registry (never cleared on route-cache
    invalidation): the transmission horizon and FIFO arrival horizon of
    a link must survive fault-rule and topology changes.
    """

    __slots__ = ("busy_until", "last_arrival")

    def __init__(self):
        self.busy_until = 0.0
        self.last_arrival = 0.0


class _Route:
    """Compiled routing decision for one directed ``(src, dst)`` pair.

    Everything that is a pure function of the topology/fault state is
    resolved once; only crash flags (read live off the host objects) and
    the RNG draws happen per send.  ``state`` is the link's persistent
    mutable state, resolved here so the send path needs no key-tuple
    allocation or dict probe.
    """

    __slots__ = ("sender", "receiver", "spec", "rules", "partitioned", "state")

    def __init__(self, sender, receiver, spec, rules, partitioned, state):
        self.sender = sender
        self.receiver = receiver
        self.spec = spec
        self.rules = rules              # tuple of matching FaultRules
        self.partitioned = partitioned
        self.state = state


class Network:
    """Routes messages between hosts with latency/bandwidth/loss models."""

    def __init__(
        self,
        env: Environment,
        rng: Optional[RngRegistry] = None,
        default_link: Optional[LinkSpec] = None,
    ):
        self.env = env
        # env.tracer is fixed at environment construction; pre-apply the
        # wants_net gate so every per-packet probe is one attribute load.
        tracer = env.tracer
        self._net_tracer = (
            tracer if tracer is not None and tracer.wants_net else None
        )
        self._rng = (rng or RngRegistry(0)).stream("network")
        self.default_link = default_link or LinkSpec()
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        # Per-directed-link state for serialisation & FIFO delivery;
        # persists across route-cache invalidations.
        self._link_state: dict[tuple[str, str], _LinkState] = {}
        self._partitions: set[frozenset[str]] = set()
        self._fault_rules: list[FaultRule] = []
        # (src, dst) -> compiled _Route; flushed on any routing change.
        # Nested by source: avoids allocating a (src, dst) key tuple
        # on every send.
        self._routes: dict[str, dict[str, _Route]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.bytes_delivered = 0

    # -- topology -----------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Register (or return the existing) host called ``name``."""
        if name not in self._hosts:
            self._hosts[name] = Host(self.env, name)
        return self._hosts[name]

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Override characteristics of the directed link src -> dst."""
        self._links[(src, dst)] = spec
        self._routes.clear()

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self.default_link)

    # -- fault injection ----------------------------------------------

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Block all traffic between the two host groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))
        self._routes.clear()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "net.partition", self.env.now, cat="fault",
                side_a=sorted(group_a), side_b=sorted(group_b),
            )

    def unpartition(self, group_a: set[str], group_b: set[str]) -> None:
        """Heal exactly the cut between the two host groups.

        Overlapping partition windows stay intact -- only the pairs
        named here are reconnected (``heal`` wipes everything).
        """
        for a in group_a:
            for b in group_b:
                self._partitions.discard(frozenset((a, b)))
        self._routes.clear()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "net.unpartition", self.env.now, cat="fault",
                side_a=sorted(group_a), side_b=sorted(group_b),
            )

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()
        self._routes.clear()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("net.heal", self.env.now, cat="fault")

    def is_partitioned(self, a: str, b: str) -> bool:
        return bool(self._partitions) and frozenset((a, b)) in self._partitions

    def add_fault(self, rule: FaultRule) -> FaultRule:
        """Install a transient fault overlay; returns it for removal."""
        self._fault_rules.append(rule)
        self._routes.clear()
        return rule

    def remove_fault(self, rule: FaultRule) -> None:
        """Remove a previously installed fault overlay (idempotent)."""
        try:
            self._fault_rules.remove(rule)
        except ValueError:
            pass
        self._routes.clear()

    # -- sending ------------------------------------------------------

    def _trace_drop(self, src: str, dst: str, payload: Any, reason: str) -> None:
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.drop", self.env.now, src=src, dst=dst,
                type=type(payload).__name__, reason=reason,
            )

    def _compile_route(self, src: str, dst: str) -> _Route:
        key = (src, dst)
        state = self._link_state.get(key)
        if state is None:
            state = self._link_state[key] = _LinkState()
        route = _Route(
            sender=self.host(src),
            receiver=self.host(dst),
            spec=self.link(src, dst),
            rules=tuple(r for r in self._fault_rules if r.matches(src, dst)),
            partitioned=self.is_partitioned(src, dst),
            state=state,
        )
        by_dst = self._routes.get(src)
        if by_dst is None:
            by_dst = self._routes[src] = {}
        by_dst[dst] = route
        return route

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Fire-and-forget, like a datagram handed to the kernel: the call
        returns immediately and delivery is scheduled in the future (or
        the message is dropped).  ``size`` is the wire size in bytes.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        self.messages_sent += 1
        by_dst = self._routes.get(src)
        route = by_dst.get(dst) if by_dst is not None else None
        if route is None:
            route = self._compile_route(src, dst)
        if route.sender.crashed or route.receiver.crashed or route.partitioned:
            self.messages_dropped += 1
            reason = (
                "src_crashed" if route.sender.crashed
                else "dst_crashed" if route.receiver.crashed
                else "partitioned"
            )
            self._trace_drop(src, dst, payload, reason)
            return
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.send", self.env.now, src=src, dst=dst,
                type=type(payload).__name__, size=size,
            )
        spec = route.spec
        if spec.loss > 0 and self._rng.random() < spec.loss:
            self.messages_dropped += 1
            self._trace_drop(src, dst, payload, "link_loss")
            return
        rules = route.rules
        for rule in rules:
            if rule.loss > 0 and self._rng.random() < rule.loss:
                self.messages_dropped += 1
                self._trace_drop(src, dst, payload, "fault_loss")
                return
        now = self.env._now
        state = route.state
        if spec.bandwidth is not None:
            start = state.busy_until
            if start < now:
                start = now
            tx_done = start + size / spec.bandwidth
            state.busy_until = tx_done
        else:
            tx_done = now
        latency = spec.latency
        if spec.jitter > 0:
            latency += self._rng.uniform(0.0, spec.jitter)
        if rules:
            for rule in rules:
                latency += rule.extra_latency
        arrival = tx_done + latency
        # Injected reordering: the message escapes the TCP FIFO -- its
        # arrival is perturbed by up to ``reorder_spread`` in either
        # direction and neither respects nor advances the link's FIFO
        # horizon, so it may overtake (or be overtaken by) neighbours.
        reordered = rules and any(
            rule.reorder > 0 and self._rng.random() < rule.reorder
            for rule in rules
        )
        if reordered:
            spread = max(r.reorder_spread for r in rules if r.reorder > 0)
            arrival = max(now, arrival + self._rng.uniform(-spread, spread))
            self.messages_reordered += 1
        else:
            # TCP-like FIFO per link: never deliver before a prior message.
            if arrival < state.last_arrival:
                arrival = state.last_arrival
            state.last_arrival = arrival
        # ``tuple.__new__`` directly: the NamedTuple-generated __new__ is
        # a Python-level lambda and its frame shows up in profiles at
        # this call rate.  Field order matches the Envelope declaration.
        envelope = _tuple_new(Envelope, (
            src, dst, payload, size, now, arrival,
            route.receiver.incarnation, False,
        ))
        # Inlined env._schedule_call: one per send makes the method-call
        # overhead measurable.  ``now + (arrival - now)`` keeps the exact
        # floating-point schedule time the un-inlined path produced.
        env = self.env
        pool = env._call_pool
        if pool:
            call = pool.pop()
            call.fn = self._deliver
            call.args = (envelope,)
        else:
            call = _ScheduledCall(self._deliver, (envelope,))
        heappush(
            env._queue, (now + (arrival - now), next(env._counter), call)
        )
        for rule in rules:
            if rule.duplicate > 0 and self._rng.random() < rule.duplicate:
                offset = self._rng.uniform(0.0, rule.reorder_spread)
                copy = Envelope(
                    src=src, dst=dst, payload=payload, size=size,
                    sent_at=now, delivered_at=arrival + offset,
                    dst_incarnation=route.receiver.incarnation, duplicated=True,
                )
                self.messages_duplicated += 1
                if tracer is not None:
                    tracer.emit(
                        "net.duplicate", now, src=src, dst=dst,
                        type=type(payload).__name__,
                    )
                self.env._schedule_call(
                    self._deliver, (copy,), arrival + offset - now
                )
                break   # at most one injected copy per message

    def broadcast(self, src: str, dsts: list[str], payload: Any, size: int = 128) -> None:
        """Unicast ``payload`` to every destination in ``dsts``."""
        send = self.send
        for dst in dsts:
            send(src, dst, payload, size)

    def _deliver(self, envelope: Envelope) -> None:
        receiver = self._hosts.get(envelope.dst)
        if receiver is None or receiver.crashed:
            self.messages_dropped += 1
            self._trace_drop(
                envelope.src, envelope.dst, envelope.payload, "dst_crashed"
            )
            return
        if receiver.incarnation != envelope.dst_incarnation:
            # The receiver rebooted while this envelope was in flight:
            # its old connections died with it, so the stale envelope
            # must not leak into the new incarnation's inbox (it could
            # arrive out of FIFO order relative to post-reboot traffic).
            self.messages_dropped += 1
            self._trace_drop(
                envelope.src, envelope.dst, envelope.payload, "stale_incarnation"
            )
            return
        if self._partitions and self.is_partitioned(envelope.src, envelope.dst):
            self.messages_dropped += 1
            self._trace_drop(
                envelope.src, envelope.dst, envelope.payload, "partitioned"
            )
            return
        self.messages_delivered += 1
        self.bytes_delivered += envelope.size
        receiver.inbox.put_nowait(envelope)
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.deliver", self.env.now,
                src=envelope.src, dst=envelope.dst,
                type=type(envelope.payload).__name__,
                latency=self.env.now - envelope.sent_at,
                inbox_depth=len(receiver.inbox),
            )
