"""Simulated message-passing network.

Models the virtualized, TCP-tunnelled network of the paper's OpenStack
deployment:

* per-link propagation latency (base + optional seeded jitter),
* per-link serialisation bandwidth (a link transmits one message at a
  time, so saturated links queue -- this is what caps a Paxos stream's
  throughput),
* FIFO per-link delivery (TCP ordering),
* lossy links and network partitions for fault injection,
* crashed hosts silently drop traffic, as a crashed OS would.

Hosts are looked up by name.  Each host owns an unbounded inbox
(:class:`repro.sim.queues.Store`) from which its actor processes drain
:class:`Envelope` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .core import Environment
from .queues import Store
from .rng import RngRegistry

__all__ = ["Envelope", "Host", "Network", "LinkSpec"]


@dataclass(frozen=True)
class Envelope:
    """A message in flight, as seen by the receiving actor."""

    src: str
    dst: str
    payload: Any
    size: int          # wire size in bytes, for bandwidth accounting
    sent_at: float
    delivered_at: float


@dataclass
class LinkSpec:
    """Transmission characteristics of a directed link."""

    latency: float = 0.0005          # one-way propagation delay (seconds)
    jitter: float = 0.0              # max uniform jitter added to latency
    bandwidth: Optional[float] = None  # bytes/second; None = infinite
    loss: float = 0.0                # independent drop probability


class Host:
    """A named node with an inbox and a crash flag."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.inbox: Store = Store(env)
        self.crashed = False

    def crash(self) -> None:
        """Crash the host: drop its queued inbox and future traffic."""
        self.crashed = True
        self.inbox = Store(self.env)

    def recover(self) -> None:
        """Bring the host back with an empty inbox (volatile state lost)."""
        self.crashed = False
        self.inbox = Store(self.env)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<Host {self.name} ({state})>"


class Network:
    """Routes messages between hosts with latency/bandwidth/loss models."""

    def __init__(
        self,
        env: Environment,
        rng: Optional[RngRegistry] = None,
        default_link: Optional[LinkSpec] = None,
    ):
        self.env = env
        self._rng = (rng or RngRegistry(0)).stream("network")
        self.default_link = default_link or LinkSpec()
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        # Per-directed-link state for serialisation & FIFO delivery.
        self._link_busy_until: dict[tuple[str, str], float] = {}
        self._link_last_arrival: dict[tuple[str, str], float] = {}
        self._partitions: set[frozenset[str]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0

    # -- topology -----------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Register (or return the existing) host called ``name``."""
        if name not in self._hosts:
            self._hosts[name] = Host(self.env, name)
        return self._hosts[name]

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Override characteristics of the directed link src -> dst."""
        self._links[(src, dst)] = spec

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self.default_link)

    # -- fault injection ----------------------------------------------

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Block all traffic between the two host groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # -- sending ------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Fire-and-forget, like a datagram handed to the kernel: the call
        returns immediately and delivery is scheduled in the future (or
        the message is dropped).  ``size`` is the wire size in bytes.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        self.messages_sent += 1
        sender = self.host(src)
        receiver = self.host(dst)
        if sender.crashed or receiver.crashed or self.is_partitioned(src, dst):
            self.messages_dropped += 1
            return
        spec = self.link(src, dst)
        if spec.loss > 0 and self._rng.random() < spec.loss:
            self.messages_dropped += 1
            return
        now = self.env.now
        key = (src, dst)
        if spec.bandwidth is not None:
            start = max(now, self._link_busy_until.get(key, 0.0))
            tx_done = start + size / spec.bandwidth
            self._link_busy_until[key] = tx_done
        else:
            tx_done = now
        latency = spec.latency
        if spec.jitter > 0:
            latency += self._rng.uniform(0.0, spec.jitter)
        arrival = tx_done + latency
        # TCP-like FIFO per link: never deliver before a prior message.
        arrival = max(arrival, self._link_last_arrival.get(key, 0.0))
        self._link_last_arrival[key] = arrival
        envelope = Envelope(
            src=src, dst=dst, payload=payload, size=size,
            sent_at=now, delivered_at=arrival,
        )
        self.env.call_later(arrival - now, self._deliver, envelope)

    def broadcast(self, src: str, dsts: list[str], payload: Any, size: int = 128) -> None:
        """Unicast ``payload`` to every destination in ``dsts``."""
        for dst in dsts:
            self.send(src, dst, payload, size)

    def _deliver(self, envelope: Envelope) -> None:
        receiver = self._hosts.get(envelope.dst)
        if receiver is None or receiver.crashed:
            self.messages_dropped += 1
            return
        if self.is_partitioned(envelope.src, envelope.dst):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.bytes_delivered += envelope.size
        receiver.inbox.put_nowait(envelope)
