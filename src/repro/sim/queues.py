"""Blocking FIFO queues for simulated processes.

:class:`Store` is the basic producer/consumer channel: ``put`` is
immediate (unbounded by default, or bounded with back-pressure), ``get``
returns an event that a consumer process yields on.  Items are delivered
in FIFO order to getters in FIFO order, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from heapq import heappush

from .core import _PENDING, Environment, Event, SimulationError

__all__ = ["Store", "QueueFull"]


class QueueFull(SimulationError):
    """Raised on a non-blocking put into a full bounded store."""


class Store:
    """Deterministic FIFO store.

    Parameters
    ----------
    env:
        The simulation environment.
    capacity:
        Maximum number of buffered items; ``None`` means unbounded.
    """

    __slots__ = ("env", "capacity", "_items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (for inspection in tests)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; returns an event that fires once stored."""
        event = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def put_nowait(self, item: Any) -> None:
        """Insert ``item`` immediately or raise :class:`QueueFull`."""
        getters = self._getters
        if getters:
            event = getters.popleft()
            # Inlined ``event.succeed(item)``: this is the per-message
            # delivery path and the extra frame is measurable.
            if event._value is _PENDING:
                event._ok = True
                event._value = item
                env = event.env
                heappush(env._queue, (env._now, next(env._counter), event))
            else:
                event.succeed(item)   # unreachable; keeps the error path
            return
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise QueueFull(f"store at capacity {self.capacity}")
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        env = self.env
        event = Event(env)
        items = self._items
        if items:
            # Inlined ``event.succeed(...)`` -- the event is fresh, so
            # the double-trigger guard cannot fire.
            event._ok = True
            event._value = items.popleft()
            heappush(env._queue, (env._now, next(env._counter), event))
            if self._putters:
                self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()
