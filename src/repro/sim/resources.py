"""Capacity-modelling resources (simulator-facing re-export).

The :class:`Server` model itself is kernel-generic and lives in
:mod:`repro.runtime.resources`, so that protocol modules can use it
without importing ``repro.sim``; this module keeps the historical
import path working for the sim-side harnesses and tests.
"""

from __future__ import annotations

from ..runtime.resources import Server

__all__ = ["Server"]
