"""Capacity-modelling resources.

:class:`Server` models a single-threaded CPU (or a disk): work items
queue FIFO and are served one at a time for a deterministic service
time.  This is what makes coordinators and replicas saturate in the
reproduction exactly as the paper's 2-vCPU VMs do -- the figure shapes
(3.62x at four streams in Fig. 3, the CPU drop after the split in
Fig. 4) all emerge from these servers reaching or leaving saturation.
"""

from __future__ import annotations

from typing import Optional

from .core import Environment, Event
from .monitor import UtilisationProbe

__all__ = ["Server"]


class Server:
    """A FIFO single-server queue with utilisation accounting.

    ``rate`` is expressed in work-units per second; a request of
    ``cost`` work-units occupies the server for ``cost / rate`` seconds.
    The common idiom is ``cost=1`` with ``rate`` = operations/second.
    """

    def __init__(self, env: Environment, rate: float, name: str = ""):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = rate
        self.name = name
        self.probe = UtilisationProbe(env, name)
        self._free_at = 0.0
        self.completed = 0

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work ahead of a request issued now."""
        return max(0.0, self._free_at - self.env._now)

    def request(self, cost: float = 1.0) -> Event:
        """Enqueue ``cost`` units of work; event fires when done."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        now = self.env._now
        start = max(now, self._free_at)
        service = cost / self.rate
        done_at = start + service
        self._free_at = done_at
        self.probe.busy()
        event = Event(self.env)
        self.env._schedule_call(self._finish, (event,), done_at - now)
        return event

    def _finish(self, event: Event) -> None:
        self.completed += 1
        if self.env._now >= self._free_at:
            self.probe.idle()
        event.succeed()

    def utilisation_between(self, start: float, end: float) -> float:
        return self.probe.utilisation_between(start, end)
