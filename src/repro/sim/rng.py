"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from
a single experiment seed, so adding a new component never perturbs the
draws of existing ones and runs stay reproducible.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, deterministically-seeded RNG streams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the RNG stream called ``name``."""
        if name not in self._streams:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 2654435761 % 2**32)
            self._streams[name] = random.Random(derived)
        return self._streams[name]
