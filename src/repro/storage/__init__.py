"""Stable storage, acceptor logs and checkpointing."""

from .checkpoint import Checkpoint, CheckpointStore
from .log import AcceptorLog, LogEntry, TrimError
from .stable import StableStore

__all__ = [
    "AcceptorLog",
    "Checkpoint",
    "CheckpointStore",
    "LogEntry",
    "StableStore",
    "TrimError",
]
