"""Replica checkpoints and state transfer.

URingPaxos coordinates replica checkpoints with acceptor log trimming:
once every replica of a group has checkpointed its state up to stream
position ``p``, instances below ``p`` can be trimmed from the acceptors.
A recovering (or newly subscribing) replica first installs the latest
checkpoint, then replays the stream from the checkpoint position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .snapshot import structural_copy

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of replica state.

    ``position`` is the stream position (exclusive) the snapshot covers:
    replaying values from ``position`` onward reproduces the live state.
    """

    position: int
    state: Any
    size_bytes: int = 0


class CheckpointStore:
    """Keeps the most recent checkpoints for one replica group."""

    def __init__(self, keep: int = 2):
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self._keep = keep
        self._checkpoints: list[Checkpoint] = []

    def save(self, position: int, state: Any, size_bytes: int = 0) -> Checkpoint:
        """Snapshot ``state`` (structurally copied) at ``position``."""
        if self._checkpoints and position < self._checkpoints[-1].position:
            raise ValueError(
                f"checkpoint position {position} moves backwards "
                f"(latest is {self._checkpoints[-1].position})"
            )
        checkpoint = Checkpoint(
            position=position, state=structural_copy(state), size_bytes=size_bytes
        )
        self._checkpoints.append(checkpoint)
        del self._checkpoints[: -self._keep]
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def safe_trim_position(self) -> int:
        """Highest stream position acceptors may trim below (0 if none)."""
        latest = self.latest()
        return latest.position if latest else 0
