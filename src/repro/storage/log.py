"""Acceptor log with trimming.

An acceptor must remember, per consensus instance, the highest ballot it
promised/accepted and the accepted value.  Elastic Paxos additionally
relies on the log for *recovery*: a replica subscribing to a stream
re-learns every decided instance from the acceptors' logs, so the log
also records decided instances and supports safe trimming once replicas
have checkpointed (URingPaxos's trim mechanism, Benz et al. 2015).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["AcceptorLog", "LogEntry", "TrimError"]


class TrimError(Exception):
    """Raised when a trim would drop state that is still needed."""


@dataclass
class LogEntry:
    """Per-instance acceptor state."""

    vrnd: int = -1            # ballot in which a value was last accepted
    value: Any = None         # the accepted value
    decided: bool = False     # set once the instance is known decided


class AcceptorLog:
    """Instance-indexed acceptor storage with a trim horizon."""

    def __init__(self):
        self._entries: dict[int, LogEntry] = {}
        self._trimmed_below = 0   # instances < this have been discarded
        self._highest = -1

    # -- basic access ---------------------------------------------------

    def entry(self, instance: int) -> LogEntry:
        """Return (creating if absent) the entry for ``instance``."""
        if instance < self._trimmed_below:
            raise TrimError(f"instance {instance} was trimmed")
        if instance not in self._entries:
            self._entries[instance] = LogEntry()
            self._highest = max(self._highest, instance)
        return self._entries[instance]

    def get(self, instance: int) -> Optional[LogEntry]:
        """Return the entry for ``instance`` or None (never creates)."""
        return self._entries.get(instance)

    def accept(self, instance: int, ballot: int, value: Any) -> None:
        """Record acceptance of ``value`` at ``ballot`` for ``instance``."""
        entry = self.entry(instance)
        entry.vrnd = ballot
        entry.value = value

    def mark_decided(self, instance: int) -> None:
        entry = self.entry(instance)
        if entry.value is None:
            raise ValueError(f"instance {instance} decided without a value")
        entry.decided = True

    def decided_value(self, instance: int) -> Any:
        """Value of a decided instance; raises if unknown or undecided."""
        if instance < self._trimmed_below:
            raise TrimError(f"instance {instance} was trimmed")
        entry = self._entries.get(instance)
        if entry is None or not entry.decided:
            raise KeyError(f"instance {instance} is not decided here")
        return entry.value

    def is_decided(self, instance: int) -> bool:
        entry = self._entries.get(instance)
        return entry is not None and entry.decided

    # -- introspection ---------------------------------------------------

    @property
    def highest_instance(self) -> int:
        """Highest instance this log has touched (-1 if empty)."""
        return self._highest

    @property
    def trimmed_below(self) -> int:
        return self._trimmed_below

    def decided_instances(self) -> list[int]:
        return sorted(i for i, e in self._entries.items() if e.decided)

    def __len__(self) -> int:
        return len(self._entries)

    # -- trimming ---------------------------------------------------------

    def trim(self, below: int) -> int:
        """Discard all instances < ``below``; returns how many were dropped.

        Every discarded instance must be decided: trimming an undecided
        instance could lose an accepted value that a future quorum needs.
        """
        if below <= self._trimmed_below:
            return 0
        for instance in sorted(self._entries):
            if instance >= below:
                break
            if not self._entries[instance].decided:
                raise TrimError(
                    f"cannot trim undecided instance {instance} (< {below})"
                )
        dropped = [i for i in self._entries if i < below]
        for instance in dropped:
            del self._entries[instance]
        self._trimmed_below = below
        return len(dropped)
