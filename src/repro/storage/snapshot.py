"""Deterministic structural copy for replica snapshots.

``copy.deepcopy`` walks every object -- including deeply immutable
tokens, frozen message dataclasses and interned scalars -- and keeps a
memo dict of everything it has seen.  Replica checkpoint state is built
from plain containers (dicts, lists, sets, tuples) whose leaves are
immutable (numbers, strings, frozen dataclasses such as ``AppValue`` or
``Batch``), so a *structural* copy that duplicates only the mutable
containers and shares the immutable leaves produces an equally
independent snapshot at a fraction of the cost.

Sharing leaves is safe precisely because they are immutable: no later
mutation of the live replica can reach into a shared ``AppValue``.  The
copy is deterministic -- iteration order of dicts/lists/tuples is
preserved, and no object identity enters any hash or digest.
"""

from __future__ import annotations

from typing import Any

__all__ = ["structural_copy"]


def structural_copy(obj: Any) -> Any:
    """Copy mutable containers recursively; share immutable leaves.

    Handles exactly the shapes checkpoint state is made of: ``dict``,
    ``list``, ``set`` and ``tuple`` (tuples are rebuilt only so that
    mutable containers *inside* them get copied).  Anything else --
    scalars, strings, frozen dataclasses, ``None`` -- is returned
    as-is.
    """
    cls = obj.__class__
    if cls is dict:
        return {k: structural_copy(v) for k, v in obj.items()}
    if cls is list:
        return [structural_copy(v) for v in obj]
    if cls is tuple:
        return tuple(structural_copy(v) for v in obj)
    if cls is set:
        return set(obj)   # set elements are hashable, hence immutable
    return obj
