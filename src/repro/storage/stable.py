"""Stable-storage write model.

Acceptors must persist promises and accepted values before answering.
The paper's VMs had no real local disks, so its experiments ran
in-memory ("all experiments were run in memory only"); we default to
zero-latency writes but keep the component explicit and configurable so
that disk-bound acceptors (the motivation for vertical scaling in
§IV-A1) can be modelled -- a stream whose acceptors write slowly caps
that stream's throughput.
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime.kernel import Kernel
from ..runtime.resources import Server

__all__ = ["StableStore"]


class StableStore:
    """Models the latency/bandwidth of an acceptor's persistent device.

    Parameters
    ----------
    env:
        Execution kernel (simulator or live).
    write_latency:
        Fixed seconds per synchronous write (fsync cost); 0 = memory.
    write_bandwidth:
        Bytes/second the device sustains; ``None`` = infinite.
    """

    def __init__(
        self,
        env: Kernel,
        write_latency: float = 0.0,
        write_bandwidth: Optional[float] = None,
        name: str = "",
    ):
        if write_latency < 0:
            raise ValueError("write_latency must be >= 0")
        self.env = env
        self.write_latency = write_latency
        self.name = name
        self._device = (
            Server(env, rate=write_bandwidth, name=f"{name}:disk")
            if write_bandwidth is not None
            else None
        )
        self.writes = 0
        self.bytes_written = 0
        # Fixed at construction: True when writes complete at the
        # current instant (plain attribute -- the acceptor checks it
        # per persisted message).
        self.is_instantaneous = write_latency == 0 and self._device is None

    def write(self, nbytes: int) -> Any:
        """Persist ``nbytes``; the returned event fires when durable."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.writes += 1
        self.bytes_written += nbytes
        if self._device is not None:
            # Queue behind earlier writes, then pay the fixed latency.
            done = self.env.event()
            queued = self._device.request(cost=nbytes)
            queued.callbacks.append(
                lambda _e: self.env.call_later(
                    self.write_latency, lambda: done.succeed()
                )
            )
            return done
        if self.write_latency > 0:
            return self.env.timeout(self.write_latency)
        event = self.env.event()
        event.succeed()
        return event

    def write_nowait(self, nbytes: int) -> None:
        """Account an instantaneous write without allocating an event.

        Only valid when :attr:`is_instantaneous` is true; the classic
        :meth:`write` path returns a calendar-scheduled event even for
        zero-latency writes, which costs a heap round-trip per persisted
        message for nothing.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.writes += 1
        self.bytes_written += nbytes
