"""Workload generation for experiments."""

from .generators import KeyspaceWorkload, key_name

__all__ = ["KeyspaceWorkload", "key_name"]
