"""Workload generation for experiments."""

from .generators import KeyspaceWorkload, key_name, zipf_shares

__all__ = ["KeyspaceWorkload", "key_name", "zipf_shares"]
