"""Workload generators: the command mixes the paper's clients send.

A workload is an object with ``next_command(rng) -> spec`` where spec
is one of ``("put", key, value_size)``, ``("get", key)`` or
``("range", start_key, end_key)``.  Keys are drawn from a fixed
keyspace (``key-000042`` style) so ranges are meaningful.
"""

from __future__ import annotations

import random
from typing import Optional  # noqa: F401

__all__ = ["KeyspaceWorkload", "key_name", "zipf_shares"]


def key_name(index: int) -> str:
    return f"key-{index:08d}"


def zipf_shares(n: int, s: float) -> tuple[float, ...]:
    """Normalised Zipf(s) popularity shares over ``n`` ranks.

    ``zipf_shares(8, 1.8)[0]`` is the fraction of traffic the hottest
    rank attracts -- the helper both :class:`KeyspaceWorkload` and the
    skewed load scenarios (``repro.faults`` hot-shard,
    ``repro.elasticity`` hot-shard) derive their skew from, so the two
    harnesses agree on what "Zipfian" means.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if s < 0:
        raise ValueError("s must be >= 0")
    weights = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(weights)
    return tuple(weight / total for weight in weights)


class KeyspaceWorkload:
    """Random single-key and range commands over a bounded keyspace.

    Parameters mirror the paper's setups: Fig. 4 uses 1024-byte puts on
    random keys (``put_fraction=1.0``); a mixed read/write workload sets
    ``put_fraction < 1``; ``range_fraction`` adds consistent getrange
    queries spanning ``range_span`` consecutive keys.
    """

    def __init__(
        self,
        n_keys: int = 100_000,
        value_size: int = 1024,
        put_fraction: float = 1.0,
        range_fraction: float = 0.0,
        range_span: int = 100,
        zipf_s: float = 0.0,
    ):
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if not 0 <= put_fraction <= 1:
            raise ValueError("put_fraction must be in [0, 1]")
        if not 0 <= range_fraction <= 1:
            raise ValueError("range_fraction must be in [0, 1]")
        if put_fraction + range_fraction > 1 + 1e-9:
            raise ValueError("put_fraction + range_fraction must be <= 1")
        if zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        self.n_keys = n_keys
        self.value_size = value_size
        self.put_fraction = put_fraction
        self.range_fraction = range_fraction
        self.range_span = range_span
        # Zipfian skew exponent: 0 = uniform; ~0.99 = typical YCSB skew.
        self.zipf_s = zipf_s
        self._zipf_cdf: Optional[list[float]] = None
        if zipf_s > 0:
            cumulative = 0.0
            self._zipf_cdf = []
            for share in zipf_shares(n_keys, zipf_s):
                cumulative += share
                self._zipf_cdf.append(cumulative)

    def _draw_key_index(self, rng: random.Random) -> int:
        if self._zipf_cdf is None:
            return rng.randrange(self.n_keys)
        roll = rng.random()
        lo, hi = 0, len(self._zipf_cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._zipf_cdf[mid] < roll:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def next_command(self, rng: random.Random):
        roll = rng.random()
        if roll < self.put_fraction:
            return ("put", key_name(self._draw_key_index(rng)), self.value_size)
        if roll < self.put_fraction + self.range_fraction:
            start = rng.randrange(max(1, self.n_keys - self.range_span))
            return ("range", key_name(start), key_name(start + self.range_span))
        return ("get", key_name(self._draw_key_index(rng)))
