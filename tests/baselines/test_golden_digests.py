"""Golden digests: bit-identical determinism across the hot path.

The PR-3 hot-path optimisations (slotted events, pooled calendar
entries, the compiled network route cache, fast message classes,
inlined scheduling) are only admissible if they change *nothing*
observable: the exact delivery order of Figure 2 and the exact
figure-3 result series, down to every float, for a fixed seed.  These
tests pin sha256 digests of both, captured on the pre-optimisation
tree -- any ordering or RNG-draw drift in the simulator shows up here
as a digest mismatch long before it would corrupt a figure.

The digests are platform-stable: CPython's Mersenne Twister, float
repr, dict ordering and ``heapq`` are all specified behaviour.
"""

from __future__ import annotations

import hashlib

from repro.harness.experiments.vertical import VerticalConfig, run_vertical
from repro.multicast.elastic import ElasticMerger
from repro.multicast.stream import TokenLog
from repro.paxos.types import AppValue, SkipToken, SubscribeMsg

# Captured at commit d17ac55 (pre-optimisation), unchanged since.
FIG2_GOLDEN = "5923c18e45f4c08e8129dca53a056919818309a6756cfaa926bf71c62c16325e"
FIG3_GOLDEN = {
    1: "be5973130a6d4affaf70ac236031b3a991872127ea91a35bc9486bf941837b78",
    2: "be5973130a6d4affaf70ac236031b3a991872127ea91a35bc9486bf941837b78",
}


def build_figure2() -> dict[str, TokenLog]:
    """The paper's Figure 2 token logs: G1/G2 cross-subscribe."""
    s1, s2 = TokenLog(), TokenLog()
    sub_g1 = SubscribeMsg(group="G1", stream="S2")
    sub_g2 = SubscribeMsg(group="G2", stream="S1")
    s1.append(SkipToken(count=9))
    s2.append(SkipToken(count=9))
    for token in (AppValue(payload="m1"), sub_g1, AppValue(payload="m3"),
                  AppValue(payload="m5"), sub_g2, AppValue(payload="m7")):
        s1.append(token)
    for token in (AppValue(payload="m2"), sub_g1, AppValue(payload="m4"),
                  sub_g2, AppValue(payload="m6"), AppValue(payload="m8")):
        s2.append(token)
    return {"S1": s1, "S2": s2}


def replay(group: str, initial: list[str], logs: dict[str, TokenLog]) -> list:
    delivered: list = []
    merger = ElasticMerger(
        group,
        deliver=lambda v, s, p: delivered.append((s, p, v.payload)),
        stream_provider=lambda name: logs[name],
    )
    merger.bootstrap({name: logs[name] for name in initial})
    merger.pump()
    return delivered


def fig2_digest() -> str:
    r1 = replay("G1", ["S1"], build_figure2())
    r2 = replay("G2", ["S2"], build_figure2())
    return hashlib.sha256(repr((r1, r2)).encode()).hexdigest()


def fig3_digest(seed: int) -> str:
    config = VerticalConfig(
        duration=6.0, add_interval=2.0, n_streams=3, threads_per_stream=2,
        value_size=1024, per_stream_limit=300.0, lam=1000, delta_t=0.05,
        seed=seed,
    )
    result = run_vertical(config)
    blob = repr((
        result.throughput,
        sorted(result.per_stream.items()),
        result.interval_averages,
        result.latency_p95_ms,
        result.subscribe_times,
    ))
    return hashlib.sha256(blob.encode()).hexdigest()


def test_fig2_delivery_order_golden():
    assert fig2_digest() == FIG2_GOLDEN


def test_fig3_series_golden_seed1():
    assert fig3_digest(1) == FIG3_GOLDEN[1]


def test_fig3_series_golden_seed2():
    assert fig3_digest(2) == FIG3_GOLDEN[2]


def test_fig3_same_seed_bit_identical():
    """Two in-process runs with the same seed produce identical series
    (no hidden global state in the pooled/cached fast paths)."""
    assert fig3_digest(1) == fig3_digest(1)


def test_bench_digest_matches_golden():
    """`repro bench --quick` hashes the same compact fig3 config; its
    reported digest must be the pinned one (the CI perf-smoke job
    therefore also revalidates determinism on every run)."""
    from repro.bench.suite import bench_fig3_e2e

    assert bench_fig3_e2e(quick=True)["digest"] == FIG3_GOLDEN[1]
