"""Acceptance criterion for the latency-attribution plane (ISSUE 7):
on a pinned-seed figure-3 run the budget must attribute >=95% of the
mean end-to-end delivery latency to named segments, deterministically
(same seed -> byte-identical budget report)."""

from __future__ import annotations

from repro.bench import bench_fig3_latency_budget
from repro.obs.critpath import BUDGET_FORMAT, SEGMENT_NAMES


def test_fig3_budget_attributes_95_percent_deterministically():
    one = bench_fig3_latency_budget(quick=True)
    two = bench_fig3_latency_budget(quick=True)
    assert one == two                      # same seed -> same budget
    assert one["format"] == BUDGET_FORMAT
    assert one["messages"]["complete"] > 1000
    assert one["coverage"] == 1.0
    assert [seg["name"] for seg in one["segments"]] == list(SEGMENT_NAMES)
    assert one["attributed_share"] >= 0.95
    # The quick fig3 runs three streams through one merger, so both
    # blame tables are populated.
    assert one["stragglers"]
    assert one["blockers"]
