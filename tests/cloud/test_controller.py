"""Unit tests for the elasticity controller."""

import pytest

from repro.cloud import CloudCompute, ElasticityController
from repro.sim import Counter, Environment, RngRegistry


def make_world(capacity=100.0, watermark=0.8, max_streams=4):
    env = Environment()
    compute = CloudCompute(env, boot_time=5.0, boot_jitter=0.0, rng=RngRegistry(1))
    throughput = Counter(env, "ops")
    provisioned = []
    controller = ElasticityController(
        env,
        compute,
        throughput,
        capacity_per_stream=capacity,
        provision_stream=lambda index, vms: provisioned.append((env.now, index, len(vms))),
        high_watermark=watermark,
        sample_interval=2.0,
        max_streams=max_streams,
    )
    controller.start()
    return env, throughput, controller, provisioned


def drive_load(env, throughput, rate, until):
    def loader():
        while env.now < until:
            throughput.record(rate * 0.1)
            yield env.timeout(0.1)

    env.process(loader())


def test_no_scale_up_below_watermark():
    env, throughput, controller, provisioned = make_world()
    drive_load(env, throughput, rate=50.0, until=20.0)   # 50 < 0.8*100
    env.run(until=20.0)
    assert provisioned == []
    assert controller.streams == 1


def test_scales_up_when_saturated():
    env, throughput, controller, provisioned = make_world()
    drive_load(env, throughput, rate=95.0, until=30.0)
    env.run(until=30.0)
    assert provisioned, "controller never provisioned a stream"
    at, index, n_vms = provisioned[0]
    assert index == 1
    assert n_vms == 3
    assert at >= 5.0   # waits for the VMs to boot
    assert controller.streams == 2


def test_respects_max_streams():
    env, throughput, controller, provisioned = make_world(max_streams=2)
    drive_load(env, throughput, rate=10_000.0, until=60.0)
    env.run(until=60.0)
    assert controller.streams == 2
    assert len(provisioned) == 1


def test_one_provisioning_at_a_time():
    env, throughput, controller, provisioned = make_world(max_streams=8)
    drive_load(env, throughput, rate=10_000.0, until=30.0)
    env.run(until=30.0)
    # Scale-ups are serialized: each needs a 5 s boot, samples every 2 s.
    times = [at for at, _i, _n in provisioned]
    assert all(b - a >= 5.0 for a, b in zip(times, times[1:]))


def test_stop_halts_sampling():
    env, throughput, controller, provisioned = make_world()
    controller.stop()
    drive_load(env, throughput, rate=10_000.0, until=20.0)
    env.run(until=20.0)
    assert provisioned == []


def test_parameter_validation():
    env = Environment()
    compute = CloudCompute(env, rng=RngRegistry(1))
    throughput = Counter(env)
    with pytest.raises(ValueError):
        ElasticityController(
            env, compute, throughput, capacity_per_stream=0,
            provision_stream=lambda i, v: None,
        )
    with pytest.raises(ValueError):
        ElasticityController(
            env, compute, throughput, capacity_per_stream=10,
            provision_stream=lambda i, v: None, high_watermark=1.5,
        )
