"""Unit tests for the cloud compute model."""

import pytest

from repro.cloud import (
    AutoScalingGroup,
    CloudCompute,
    PlacementError,
    VmState,
)
from repro.sim import Environment, RngRegistry


def make_compute(**kwargs):
    env = Environment()
    kwargs.setdefault("boot_time", 10.0)
    kwargs.setdefault("boot_jitter", 0.0)
    compute = CloudCompute(env, rng=RngRegistry(1), **kwargs)
    return env, compute


def test_vm_boots_after_boot_time():
    env, compute = make_compute()
    vm = compute.create_server("vm1")
    assert vm.state is VmState.BUILDING
    env.run(until=9.9)
    assert not vm.is_active
    env.run(until=10.1)
    assert vm.is_active
    assert vm.active_at == pytest.approx(10.0)


def test_boot_jitter_randomises_activation():
    env, compute = make_compute(boot_jitter=5.0)
    vms = [compute.create_server(f"vm{i}") for i in range(10)]
    env.run(until=20.0)
    times = {vm.active_at for vm in vms}
    assert len(times) > 1
    assert all(10.0 <= t <= 15.0 for t in times)


def test_anti_affinity_spreads_over_distinct_hosts():
    env, compute = make_compute(n_compute_nodes=4)
    vms = [
        compute.create_server(f"acc{i}", anti_affinity_group="ring1")
        for i in range(4)
    ]
    hosts = {vm.physical_host for vm in vms}
    assert len(hosts) == 4


def test_anti_affinity_exhaustion_raises():
    env, compute = make_compute(n_compute_nodes=2)
    compute.create_server("a", anti_affinity_group="g")
    compute.create_server("b", anti_affinity_group="g")
    with pytest.raises(PlacementError):
        compute.create_server("c", anti_affinity_group="g")


def test_node_capacity_enforced():
    env, compute = make_compute(n_compute_nodes=1, vms_per_node=2)
    compute.create_server("a")
    compute.create_server("b")
    with pytest.raises(PlacementError):
        compute.create_server("c")


def test_duplicate_name_rejected():
    env, compute = make_compute()
    compute.create_server("a")
    with pytest.raises(ValueError):
        compute.create_server("a")


def test_deleted_vm_never_becomes_active():
    env, compute = make_compute()
    vm = compute.create_server("a")
    compute.delete_server("a")
    env.run(until=20.0)
    assert vm.state is VmState.DELETED


def test_wait_active_event():
    env, compute = make_compute()
    vms = [compute.create_server(f"vm{i}") for i in range(3)]
    fired = []
    done = compute.wait_active(vms)
    done.callbacks.append(lambda _e: fired.append(env.now))
    env.run(until=20.0)
    assert fired == [pytest.approx(10.0)]


def test_autoscaling_group_scale_up_callback():
    env, compute = make_compute()
    scaled = []
    group = AutoScalingGroup(compute, "ring2", on_scaled=lambda vms: scaled.append(len(vms)))
    group.scale_up(3)
    assert group.size == 3
    env.run(until=20.0)
    assert scaled == [3]


def test_autoscaling_group_scale_down_newest_first():
    env, compute = make_compute()
    group = AutoScalingGroup(compute, "ring3")
    group.scale_up(3)
    env.run(until=20.0)
    victims = group.scale_down(1)
    assert [v.name for v in victims] == ["ring3-003"]
    assert group.size == 2


def test_scale_up_requires_positive_count():
    env, compute = make_compute()
    group = AutoScalingGroup(compute, "g")
    with pytest.raises(ValueError):
        group.scale_up(0)
