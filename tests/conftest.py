"""Shared fixtures for the test suite."""

import pytest

from repro.harness.cluster import MulticastCluster


@pytest.fixture
def make_cluster():
    """Factory for protocol-level clusters (streams + replicas + client).

    Deduplicates the environment/network/stream-deployment boilerplate
    the integration tests used to copy-paste::

        cluster = make_cluster(["S1", "S2"], seed=31)
        cluster.add_replica("r1", "G1", ["S1"])
        cluster.client.multicast("S1", payload=1)
        cluster.run(until=1.0)
        assert cluster.payloads("r1") == [1]

    Delivered ``(payload, stream)`` pairs are recorded per replica in
    ``cluster.delivered``; ``cluster.payloads(name)`` strips the stream.
    """

    def factory(streams=("S1", "S2"), seed=7, lam=500, delta_t=0.05, **kwargs):
        return MulticastCluster(
            streams=tuple(streams), seed=seed, lam=lam, delta_t=delta_t, **kwargs
        )

    return factory
