"""Unit tests for the configuration registry."""

from repro.coordination import (
    RegistryClient,
    RegistryService,
)
from repro.net.actor import Actor
from repro.sim import Environment, LinkSpec, Network, RngRegistry


class StubActor(Actor):
    """A test actor that forwards registry replies to its client stub."""

    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.registry = RegistryClient(self)

    def dispatch(self, payload, src):
        if self.registry.handle_registry_message(payload):
            return
        super().dispatch(payload, src)


def make_world():
    env = Environment()
    net = Network(env, rng=RngRegistry(3), default_link=LinkSpec(latency=0.001))
    service = RegistryService(env, net)
    service.start()
    actor = StubActor(env, net, "actor")
    actor.start()
    return env, net, service, actor


def test_get_missing_key_reports_version_minus_one():
    env, net, service, actor = make_world()
    results = []
    actor.registry.get("nope", lambda value, version: results.append((value, version)))
    env.run(until=0.1)
    assert results == [(None, -1)]


def test_set_then_get_roundtrip():
    env, net, service, actor = make_world()
    results = []
    actor.registry.set("config", {"n": 3}, callback=results.append)
    env.run(until=0.1)
    assert results == [0]
    got = []
    actor.registry.get("config", lambda value, version: got.append((value, version)))
    env.run(until=0.2)
    assert got == [({"n": 3}, 0)]


def test_versions_increment_per_key():
    env, net, service, actor = make_world()
    versions = []
    actor.registry.set("k", "a", callback=versions.append)
    actor.registry.set("k", "b", callback=versions.append)
    actor.registry.set("other", "x", callback=versions.append)
    env.run(until=0.1)
    assert versions == [0, 1, 0]


def test_watch_fires_on_set_and_reports_initial_state():
    env, net, service, actor = make_world()
    events = []
    actor.registry.watch("map", lambda value, version: events.append((value, version)))
    env.run(until=0.05)
    assert events == [(None, -1)]   # initial snapshot
    actor.registry.set("map", "v1")
    env.run(until=0.1)
    assert events[-1] == ("v1", 0)


def test_watch_is_persistent_across_updates():
    env, net, service, actor = make_world()
    events = []
    actor.registry.watch("map", lambda value, version: events.append(version))
    actor.registry.set("map", "v1")
    actor.registry.set("map", "v2")
    env.run(until=0.2)
    assert events == [-1, 0, 1]


def test_multiple_watchers_all_notified():
    env, net, service, actor = make_world()
    actor2 = StubActor(env, net, "actor2")
    actor2.start()
    e1, e2 = [], []
    actor.registry.watch("map", lambda v, ver: e1.append(v))
    actor2.registry.watch("map", lambda v, ver: e2.append(v))
    env.run(until=0.05)
    service.put_local("map", "new")
    env.run(until=0.1)
    assert e1[-1] == "new"
    assert e2[-1] == "new"


def test_put_local_and_get_local():
    env, net, service, actor = make_world()
    assert service.get_local("k") is None
    assert service.put_local("k", 1) == 0
    assert service.put_local("k", 2) == 1
    assert service.get_local("k") == 2
