"""Control RPC: framing, dispatch, error surfacing."""

from __future__ import annotations

import asyncio

import pytest

from repro.deploy.control import ControlClient, ControlError, ControlServer


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=10))


def test_round_trip_and_sequential_requests():
    async def main():
        seen = []

        async def handler(request):
            seen.append(request["op"])
            return {"echo": request.get("value"), "n": len(seen)}

        server = ControlServer(handler)
        host, port = await server.start()
        client = ControlClient(host, port)
        await client.connect()
        first = await client.call("ping", value="x")
        second = await client.call("ping", value="y")
        assert first == {"ok": True, "echo": "x", "n": 1}
        assert second == {"ok": True, "echo": "y", "n": 2}
        assert seen == ["ping", "ping"]
        assert server.requests_served == 2
        await client.close()
        await server.stop()

    run(main())


def test_handler_exception_surfaces_as_control_error():
    async def main():
        async def handler(request):
            if request["op"] == "boom":
                raise ValueError("that op is broken")
            return {}

        server = ControlServer(handler)
        host, port = await server.start()
        client = ControlClient(host, port)
        await client.connect()
        with pytest.raises(ControlError, match="that op is broken"):
            await client.call("boom")
        # The connection survives a failed op: the next one works.
        assert (await client.call("fine"))["ok"] is True
        await client.close()
        await server.stop()

    run(main())


def test_call_without_connection_raises():
    async def main():
        client = ControlClient("127.0.0.1", 1)
        with pytest.raises(ControlError, match="not connected"):
            await client.call("ping")

    run(main())


def test_peer_close_surfaces_as_control_error():
    # The kill -9 case: the worker's end of the control connection
    # vanishes; the supervisor's call must raise, not hang.
    async def main():
        async def immediate_close(reader, writer):
            writer.close()

        server = await asyncio.start_server(
            immediate_close, "127.0.0.1", 0
        )
        host, port = server.sockets[0].getsockname()[:2]
        client = ControlClient(host, port)
        await client.connect()
        with pytest.raises(ControlError):
            await client.call("ping", timeout=2.0)
        await client.close()
        server.close()
        await server.wait_closed()

    run(main())


def test_concurrent_calls_serialize_on_one_connection():
    async def main():
        async def handler(request):
            await asyncio.sleep(0.02)
            return {"value": request["value"]}

        server = ControlServer(handler)
        host, port = await server.start()
        client = ControlClient(host, port)
        await client.connect()
        results = await asyncio.gather(
            *(client.call("op", value=i) for i in range(5))
        )
        assert sorted(r["value"] for r in results) == [0, 1, 2, 3, 4]
        await client.close()
        await server.stop()

    run(main())
