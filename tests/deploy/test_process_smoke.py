"""Deployment smoke: the cluster as real OS processes.

Each test here spawns actual ``python -m repro worker`` children and
drives them over the control RPC -- the full tentpole path.  Wall
clocks on shared CI machines stall arbitrarily, so runs are short,
drain timeouts generous, and each scenario retries once before
failing (the same policy as the single-process live smoke).
"""

from __future__ import annotations

import json
import os

from repro.deploy.chaos import SCENARIOS, run_deploy
from repro.deploy.supervisor import DeployConfig
from repro.deploy.topology import build_topology


def _run(scenario: str, run_dir: str, **build_kwargs):
    defaults = dict(
        nodes=3, streams=2, replicas=3, duration=1.5, rate=80.0, burst=1
    )
    defaults.update(build_kwargs)
    spec = SCENARIOS[scenario].build_spec(**defaults)
    config = DeployConfig(spec=spec, run_dir=run_dir, scenario=scenario)
    return run_deploy(config)


def _attempt(scenario: str, tmp_path, **kwargs):
    report = _run(scenario, str(tmp_path / "run1"), **kwargs)
    if not report.ok:
        report = _run(scenario, str(tmp_path / "run2"), **kwargs)
    return report


def test_three_process_baseline_agrees(tmp_path):
    report = _attempt("baseline", tmp_path)
    assert report.ok, report.summary()
    manifest = report.manifest
    # Really multi-process: three distinct worker PIDs, none of them us.
    pids = [pid for entry in manifest["nodes"].values()
            for pid in entry["pids"]]
    assert len(pids) == 3
    assert len(set(pids)) == 3
    assert os.getpid() not in pids
    assert manifest["agreement"]["ok"] is True
    assert manifest["violations"] == {}
    # A clean run leaves no flight-recorder dumps.
    assert manifest["flight_dumps"] == []
    # The online certifier ran alongside the cluster, certified the run
    # safe, and -- the false-positive gate -- raised zero alerts on a
    # healthy baseline.  Its alert log landed in the run directory.
    audit = manifest["audit"]
    assert audit["ok"] is True
    assert audit["violations"] == []
    assert audit["worker_violations"] == []
    assert audit["alerts"] == []
    assert audit["events"] > 0
    assert os.path.exists(os.path.join(report.run_dir, "alerts.jsonl"))
    assert manifest["workload"]["submitted"] > 0
    # Every node wrote its trace; the spec landed next to them.
    for entry in manifest["nodes"].values():
        assert entry["trace_files"]
        for trace in entry["trace_files"]:
            assert os.path.exists(trace)
    assert os.path.exists(os.path.join(report.run_dir, "topology.json"))
    assert os.path.exists(os.path.join(report.run_dir, "metrics.json"))
    # The manifest embeds the exact spec the workers hydrated from.
    assert manifest["format"] == "repro-deploy-manifest/1"
    assert manifest["spec"]["format"] == "repro-deploy-spec/1"
    with open(os.path.join(report.run_dir, "topology.json")) as fh:
        assert json.load(fh) == manifest["spec"]


def test_kill9_restart_reconverges(tmp_path):
    report = _attempt("kill9", tmp_path)
    assert report.ok, report.summary()
    manifest = report.manifest
    chaos = manifest["chaos"]
    victim = chaos["victim"]
    # The victim really died and really came back as a new process.
    assert manifest["nodes"][victim]["restarts"] == 1
    assert len(manifest["nodes"][victim]["pids"]) == 2
    assert chaos["killed_pid"] != chaos["restarted_pid"]
    # Two incarnations, two trace files (distinct clock domains).
    assert len(manifest["nodes"][victim]["trace_files"]) == 2
    # Agreement includes the restarted replica's replayed sequence, and
    # nothing tripped an invariant -- so no flight dumps either.
    assert manifest["agreement"]["ok"] is True
    assert manifest["violations"] == {}
    assert manifest["flight_dumps"] == []
    # Live certification survived the chaos: a kill -9 plus restart may
    # raise alerts (staleness, unreachable telemetry) but must never
    # trip a safety property.
    audit = manifest["audit"]
    assert audit["ok"] is True
    assert audit["violations"] == []
    assert audit["worker_violations"] == []


def test_scenario_registry_is_complete():
    assert set(SCENARIOS) == {
        "baseline", "kill9", "partition", "clock-skew", "rolling-replace"
    }
    for scenario in SCENARIOS.values():
        assert scenario.description
        spec = scenario.build_spec(
            nodes=3, streams=2, replicas=3,
            duration=1.0, rate=50.0, burst=1,
        )
        assert spec.all_replicas()      # every scenario yields a valid spec
