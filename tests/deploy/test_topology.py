"""Topology spec: validation, placement, serialization, configs."""

from __future__ import annotations

import json

import pytest

from repro.deploy.topology import (
    NodeSpec,
    TopologySpec,
    WorkloadSpec,
    agent_host,
    build_topology,
    load_address_file,
)


def test_default_build_places_round_robin():
    spec = build_topology()
    layout = {n.name: (n.streams, n.replicas, n.client) for n in spec.nodes}
    assert layout == {
        "n1": (("s1",), ("r1",), True),
        "n2": (("s2",), ("r2",), False),
        "n3": ((), ("r3",), False),
    }
    assert spec.owner_of("s2") == "n2"
    assert spec.node_of_replica("r3") == "n3"
    assert spec.client_node() == "n1"
    assert spec.all_replicas() == ("r1", "r2", "r3")


def test_dedicated_stream_nodes_layout():
    spec = build_topology(dedicate_stream_nodes=True)
    # Replica/client nodes first, then one node per stream: the
    # rolling-replace shape where a stream's node can be power-cycled
    # without touching replicas.
    assert [n.name for n in spec.nodes] == ["n1", "n2", "n3", "n4", "n5"]
    assert spec.owner_of("s1") == "n4"
    assert spec.owner_of("s2") == "n5"
    assert all(not n.replicas for n in spec.nodes[3:])


def test_hosts_of_covers_every_actor_on_the_node():
    spec = build_topology()
    assert set(spec.hosts_of("n1")) == {
        "n1/agent", "s1/coordinator", "s1/acceptor-1", "s1/acceptor-2",
        "s1/acceptor-3", "r1", "client",
    }
    assert set(spec.hosts_of("n3")) == {"n3/agent", "r3"}
    assert agent_host("n3") == "n3/agent"


def test_stream_config_identical_on_every_worker():
    spec = build_topology(rate=3000.0)
    first = spec.stream_config("s1")
    second = spec.stream_config("s1")
    assert first == second
    assert first.coordinator == "s1/coordinator"
    assert first.acceptors == (
        "s1/acceptor-1", "s1/acceptor-2", "s1/acceptor-3"
    )
    assert first.lam == 6000         # scales with the offered rate
    assert build_topology(rate=100.0).lam == 4000   # never below default


def test_spec_round_trips_through_json(tmp_path):
    spec = build_topology(
        clock_offsets={"n2": 0.25}, duration=2.5, rate=150.0, burst=4
    )
    path = tmp_path / "topology.json"
    spec.save(str(path))
    loaded = TopologySpec.load(str(path))
    assert loaded == spec
    # And the file is plain JSON with the format marker.
    raw = json.loads(path.read_text())
    assert raw["format"] == "repro-deploy-spec/1"


def test_validation_rejects_broken_placements():
    node = NodeSpec(name="n1", streams=("s1",), replicas=("r1",), client=True)
    with pytest.raises(ValueError):     # stream placed nowhere
        TopologySpec(nodes=(node,), streams=("s1", "s2"))
    with pytest.raises(ValueError):     # duplicate replica
        TopologySpec(
            nodes=(
                node,
                NodeSpec(name="n2", streams=("s2",), replicas=("r1",)),
            ),
            streams=("s1", "s2"),
        )
    with pytest.raises(ValueError):     # no client anywhere
        TopologySpec(
            nodes=(NodeSpec(name="n1", streams=("s1",), replicas=("r1",)),),
            streams=("s1",),
        )
    with pytest.raises(ValueError):     # unknown initial stream
        TopologySpec(
            nodes=(node, NodeSpec(name="n2", streams=("s2",))),
            streams=("s1", "s2"),
            initial_streams=("s9",),
        )


def test_workload_spec_defaults_survive_round_trip():
    spec = build_topology(duration=1.0, rate=50.0)
    loaded = TopologySpec.from_json(spec.to_json())
    assert loaded.workload == WorkloadSpec(duration=1.0, rate=50.0)


def test_load_address_file_both_shapes(tmp_path):
    nested = tmp_path / "nested.json"
    nested.write_text(json.dumps({
        "nodes": {"n1": {"control": ["10.0.0.5", 7801]},
                  "n2": {"control": ["10.0.0.6", 7801]}}
    }))
    assert load_address_file(str(nested)) == {
        "n1": ("10.0.0.5", 7801), "n2": ("10.0.0.6", 7801),
    }
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps({"n1": ["127.0.0.1", 9000]}))
    assert load_address_file(str(bare)) == {"n1": ("127.0.0.1", 9000)}
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(ValueError):
        load_address_file(str(empty))
