"""Acceptance tests: the closed loop meets each scenario's oracle.

One run per named scenario (cached at module scope -- each is a full
simulated cluster), then assertions on the decision timeline, the
executed reconfigurations, delivery health and the trace's causal
chain.  These are the PR's proof obligations: the controller reacts to
the load signal it was built for, never disrupts delivery, and every
decision is reconstructable from the trace alone.
"""

import json

import pytest

from repro.elasticity import SCENARIOS, ElasticityRunner, get_scenario, run_scenario
from repro.obs.schema import validate_event

_RESULTS: dict = {}
_RUNNERS: dict = {}


def _run(name: str, seed: int = 1):
    key = (name, seed)
    if key not in _RESULTS:
        runner = ElasticityRunner(get_scenario(name), seed=seed)
        _RESULTS[key] = runner.run()
        _RUNNERS[key] = runner
    return _RESULTS[key]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_meets_acceptance_oracle(name):
    result = _run(name)
    assert result.ok, result.report()
    assert result.converged
    # Delivery stayed disruption-free through the reconfiguration.
    assert result.max_gap <= result.gap_bound
    # Both replicas delivered the same, non-empty history.
    counts = set(result.delivered.values())
    assert len(counts) == 1 and counts.pop() > 0


def test_ramp_subscribes_a_new_stream():
    result = _run("ramp")
    assert "subscribe" in result.executed_kinds
    assert "S2" in result.final_streams
    # The decision cleared hysteresis: sustain records precede the
    # enforce record for the same rule.
    statuses = [r.status for r in result.timeline]
    assert "enforce" in statuses
    assert statuses.index("sustain") < statuses.index("enforce")


def test_hot_shard_splits_the_hot_range():
    result = _run("hot-shard")
    assert "split" in result.executed_kinds
    runner = _RUNNERS[("hot-shard", 1)]
    # The split moved exactly one half-range of one shard to the new
    # stream, and the router only activated it after commit.
    assert "S3" in result.final_streams
    assert runner.router.routes_to("S3")


def test_slow_acceptor_ring_is_replaced_and_retired():
    result = _run("slow-acceptor")
    assert "replace" in result.executed_kinds
    # The slow ring was drained and unsubscribed...
    assert result.retired == ["S1"]
    assert "S1" not in result.final_streams
    # ...and its replacement carries the group now.
    assert "S3" in result.final_streams


def test_same_seed_same_decision_timeline():
    first = _run("ramp", seed=5)
    second = ElasticityRunner(get_scenario("ramp"), seed=5).run()
    assert first.digest == second.digest
    assert first.timeline == second.timeline
    # request_ids come from a process-global counter; everything else
    # about the executed actions must match bit for bit.
    assert [e[:3] for e in first.executed] == [e[:3] for e in second.executed]


def test_different_seed_different_history():
    a = _run("ramp")
    b = _run("ramp", seed=2)
    assert a.digest != b.digest


def test_dry_run_decides_but_never_acts():
    dry = ElasticityRunner(get_scenario("ramp"), seed=1, dry_run=True).run()
    off = ElasticityRunner(
        get_scenario("ramp"), seed=1, controller_enabled=False
    ).run()
    assert dry.executed == []
    assert any(r.status == "advisory" for r in dry.timeline)
    assert not any(r.status == "enforce" for r in dry.timeline)
    # A dry-run run is observationally identical to no controller at
    # all: bit-identical delivery history.
    assert dry.digest == off.digest
    assert dry.ok and off.ok


def test_decision_trace_causality_and_schema():
    """elastic.decision -> control.subscribe -> merge.subscribe.commit,
    linked by request_id, in seq order; every event schema-valid."""
    _run("ramp")
    runner = _RUNNERS[("ramp", 1)]
    events = runner.recorder.events()
    for event in events:
        validate_event(json.loads(json.dumps(event)))
    actions = [e for e in events if e["kind"] == "elastic.action"]
    assert actions, "no elastic.action traced"
    for action in actions:
        request_id = action["request_id"]
        decisions = [
            e["seq"] for e in events
            if e["kind"] == "elastic.decision"
            and e["mode"] == "enforce"
            and e["seq"] < action["seq"]
        ]
        subscribes = [
            e["seq"] for e in events
            if e["kind"] == "control.subscribe"
            and e["request_id"] == request_id
        ]
        commits = [
            e["seq"] for e in events
            if e["kind"] == "merge.subscribe.commit"
            and e["request_id"] == request_id
        ]
        assert decisions, "decision must precede the action"
        assert len(subscribes) == 1
        assert len(commits) == len(runner.cluster.replicas)
        assert max(decisions) < subscribes[0] < min(commits)


def test_flight_recorder_rides_along():
    _run("ramp")
    runner = _RUNNERS[("ramp", 1)]
    assert runner.recorder.recorded > 0
    kinds = {e["kind"] for e in runner.recorder.events()}
    assert "elastic.poll" in kinds
    assert "replica.deliver" in kinds


def test_scenario_listing_is_stable():
    assert set(SCENARIOS) == {"ramp", "hot-shard", "slow-acceptor"}
    with pytest.raises(KeyError):
        get_scenario("nope")


def test_run_scenario_helper():
    result = run_scenario("ramp", seed=1)
    assert result.ok
