"""Unit tests: the router's routing algebra and the controller's
proposal-to-action planning, with no cluster underneath."""

import pytest

from repro.elasticity.actions import ReplaceStream, SplitShard, SubscribeStream
from repro.elasticity.controller import ElasticityController
from repro.elasticity.policy import PolicyEngine, Proposal
from repro.elasticity.router import StreamRouter
from repro.elasticity.signals import SignalSnapshot


# -- router -------------------------------------------------------------

def test_router_round_robins_initial_streams():
    router = StreamRouter(range(4), ["S1", "S2"])
    assert router.stream_for(0, 0.1) == "S1"
    assert router.stream_for(1, 0.1) == "S2"
    assert router.stream_for(2, 0.9) == "S1"
    assert router.stream_for(3, 0.9) == "S2"
    assert router.active_streams() == ("S1", "S2")


def test_router_requires_a_stream():
    with pytest.raises(ValueError):
        StreamRouter(range(2), [])


def test_activation_is_commit_gated():
    router = StreamRouter(range(2), ["S1"])
    router.split(0, "S2")
    # Desired changed, active didn't: S2 has not committed.
    assert router.desired_streams() == ("S1", "S2")
    assert router.stream_for(0, 0.9) == "S1"
    router.activate(["S1"])              # still no S2
    assert router.stream_for(0, 0.9) == "S1"
    router.activate(["S1", "S2"])
    assert router.stream_for(0, 0.9) == "S2"
    assert router.stream_for(0, 0.1) == "S1"   # lower half stays put


def test_split_moves_only_the_upper_half():
    router = StreamRouter([7], ["S1"])
    router.split(7, "S9")
    router.activate(["S1", "S9"])
    assert router.stream_for(7, 0.49) == "S1"
    assert router.stream_for(7, 0.5) == "S9"


def test_move_all_drains_a_stream():
    router = StreamRouter(range(3), ["S1", "S2"])
    router.move_all("S1", "S3")
    router.activate(["S2", "S3"])
    assert not router.routes_to("S1")
    assert router.routes_to("S3")


def test_spread_covers_the_new_stream():
    router = StreamRouter(range(4), ["S1"])
    router.spread("S2")
    router.activate(["S1", "S2"])
    assert router.active_streams() == ("S1", "S2")


def test_pick_split_prefers_the_hottest_unsplit_shard():
    router = StreamRouter(range(4), ["S1"])
    rates = {0: 10.0, 1: 50.0, 2: 50.0, 3: 5.0}
    # Tie on rate between shards 1 and 2: the lower shard id wins,
    # deterministically.
    assert router.pick_split("S1", rates) == 1
    router.split(1, "S2")
    router.activate(["S1", "S2"])
    assert router.pick_split("S1", rates) == 2


def test_pick_split_returns_none_when_everything_is_split():
    router = StreamRouter([0], ["S1"])
    router.split(0, "S2")
    router.activate(["S1", "S2"])
    assert router.pick_split("S1", {0: 99.0}) is None
    assert router.pick_split("S9", {}) is None


# -- controller planning ------------------------------------------------

class StubExecutor:
    def __init__(self):
        self.executed = []

    def next_stream_name(self):
        return "S9"

    def execute(self, action):
        self.executed.append(action)
        return 42


def snap(streams=("S1", "S2"), shard_rate=None):
    return SignalSnapshot(
        at=1.0, streams=tuple(streams), provisioned=tuple(streams),
        pending_subscription=False, shard_rate=shard_rate or {},
    )


def controller(router=None):
    return ElasticityController(
        source=None, engine=PolicyEngine(rules=()), executor=StubExecutor(),
        router=router,
    )


def test_plan_subscribe_names_the_next_stream():
    action = controller().plan(
        Proposal(kind="subscribe", rule="r", reason=""), snap()
    )
    assert action == SubscribeStream(stream="S9", via="S1")


def test_plan_split_picks_the_hot_shard():
    router = StreamRouter(range(2), ["S1"])
    action = controller(router).plan(
        Proposal(kind="split", rule="r", reason="", stream="S1"),
        snap(streams=("S1",), shard_rate={0: 5.0, 1: 80.0}),
    )
    assert action == SplitShard(shard=1, stream="S9", via="S1")


def test_plan_split_needs_a_router_and_a_live_target():
    assert controller().plan(
        Proposal(kind="split", rule="r", reason="", stream="S1"), snap()
    ) is None
    router = StreamRouter(range(2), ["S1"])
    assert controller(router).plan(
        Proposal(kind="split", rule="r", reason="", stream="GONE"), snap()
    ) is None


def test_plan_replace_routes_around_the_old_stream():
    action = controller().plan(
        Proposal(kind="replace", rule="r", reason="", stream="S1"), snap()
    )
    # The carrier must not be the ring being retired.
    assert action == ReplaceStream(old="S1", stream="S9", via="S2")


def test_plan_replace_of_a_retired_stream_is_dropped():
    assert controller().plan(
        Proposal(kind="replace", rule="r", reason="", stream="S3"), snap()
    ) is None


def test_plan_with_no_committed_streams_is_a_no_op():
    assert controller().plan(
        Proposal(kind="subscribe", rule="r", reason=""), snap(streams=())
    ) is None


def test_tick_executes_released_proposals():
    engine = PolicyEngine(rules=(_AlwaysSubscribe(),), sustain=1, cooldown=0.0)
    executor = StubExecutor()
    ctl = ElasticityController(
        source=_StaticSource(snap()), engine=engine, executor=executor
    )
    executed = ctl.tick()
    assert [a.kind for a in executed] == ["subscribe"]
    assert executor.executed == executed
    assert ctl.executed[0][2] == 42


class _AlwaysSubscribe:
    name = "always"

    def evaluate(self, snapshot):
        return Proposal(kind="subscribe", rule=self.name, reason="test")


class _StaticSource:
    def __init__(self, snapshot):
        self._snapshot = snapshot

    def sample(self):
        return self._snapshot
