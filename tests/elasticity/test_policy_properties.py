"""Property tests for the policy layer (hypothesis).

The engine's arbitration promises -- dry-run never acts, cooldowns
space same-kind actions, hysteresis demands a full sustain streak --
and the rules' monotonicity (more load never un-breaches a threshold)
are stated here as properties over arbitrary signal histories, not as
single examples.
"""

from hypothesis import given, settings, strategies as st

from repro.elasticity.policy import (
    BackpressureHighWater,
    DecideRateCeiling,
    LatencySlo,
    PolicyEngine,
    SlowStreamSlo,
    StreamSkew,
)
from repro.elasticity.signals import SignalSnapshot


def snapshot(at, rate=0.0, latency=None, backpressure=0.0, streams=("S1",)):
    return SignalSnapshot(
        at=at,
        streams=tuple(streams),
        provisioned=tuple(streams),
        pending_subscription=False,
        decide_rate={s: rate for s in streams},
        latency_p99_ms=latency,
        backpressure=backpressure,
    )


# -- engine arbitration -------------------------------------------------

rates = st.floats(
    min_value=0.0, max_value=10_000.0,
    allow_nan=False, allow_infinity=False,
)


@settings(max_examples=200, deadline=None)
@given(st.lists(rates, min_size=1, max_size=40))
def test_dry_run_never_releases(rate_history):
    engine = PolicyEngine(
        rules=(DecideRateCeiling(ceiling=100.0),),
        sustain=1, cooldown=0.0, dry_run=True,
    )
    for i, rate in enumerate(rate_history):
        released = engine.observe(snapshot(at=float(i), rate=rate))
        assert released == []
    assert not any(r.status == "enforce" for r in engine.timeline)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(rates, min_size=2, max_size=60),
    st.floats(min_value=0.1, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.05, max_value=1.0,
              allow_nan=False, allow_infinity=False),
)
def test_enforcements_of_one_kind_respect_cooldown(history, cooldown, step):
    engine = PolicyEngine(
        rules=(DecideRateCeiling(ceiling=50.0),),
        sustain=1, cooldown=cooldown,
    )
    for i, rate in enumerate(history):
        engine.observe(snapshot(at=i * step, rate=rate))
    fired = [r.at for r in engine.timeline if r.status == "enforce"]
    for earlier, later in zip(fired, fired[1:]):
        assert later - earlier >= cooldown


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.booleans(), min_size=1, max_size=60),
)
def test_no_enforce_before_sustain_consecutive_breaches(sustain, breaches):
    """An action requires `sustain` consecutive breaching observations;
    any healthy observation resets the streak."""
    engine = PolicyEngine(
        rules=(DecideRateCeiling(ceiling=100.0),),
        sustain=sustain, cooldown=0.0,
    )
    streak = 0
    for i, breach in enumerate(breaches):
        rate = 500.0 if breach else 0.0
        released = engine.observe(snapshot(at=float(i), rate=rate))
        streak = streak + 1 if breach else 0
        if released:
            assert streak >= sustain
            streak = 0   # firing resets the engine's streak too
        elif breach:
            assert streak < sustain or not released


@settings(max_examples=100, deadline=None)
@given(st.lists(rates, min_size=1, max_size=40))
def test_pending_subscription_blocks_everything(rate_history):
    engine = PolicyEngine(
        rules=(DecideRateCeiling(ceiling=10.0),), sustain=1, cooldown=0.0
    )
    for i, rate in enumerate(rate_history):
        snap = SignalSnapshot(
            at=float(i), streams=("S1",), provisioned=("S1",),
            pending_subscription=True, decide_rate={"S1": rate},
        )
        assert engine.observe(snap) == []
    assert not any(r.status == "enforce" for r in engine.timeline)


# -- rule monotonicity --------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(rates, rates)
def test_decide_rate_ceiling_is_monotone(x, y):
    lo, hi = sorted((x, y))
    rule = DecideRateCeiling(ceiling=100.0)
    if rule.evaluate(snapshot(0.0, rate=lo)) is not None:
        assert rule.evaluate(snapshot(0.0, rate=hi)) is not None


@settings(max_examples=200, deadline=None)
@given(rates, rates)
def test_latency_slo_is_monotone(x, y):
    lo, hi = sorted((x, y))
    rule = LatencySlo(p99_ms=100.0)
    if rule.evaluate(snapshot(0.0, latency=lo)) is not None:
        assert rule.evaluate(snapshot(0.0, latency=hi)) is not None


def test_latency_slo_missing_signal_is_not_a_breach():
    assert LatencySlo(p99_ms=1.0).evaluate(snapshot(0.0, latency=None)) is None


@settings(max_examples=200, deadline=None)
@given(rates, rates)
def test_backpressure_high_water_is_monotone(x, y):
    lo, hi = sorted((x, y))
    rule = BackpressureHighWater(high_water=100.0)
    if rule.evaluate(snapshot(0.0, backpressure=lo)) is not None:
        assert rule.evaluate(snapshot(0.0, backpressure=hi)) is not None


@settings(max_examples=200, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=1.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
)
def test_stream_skew_is_monotone_in_the_hot_rate(x, y, cold):
    """Raising the hot stream's rate (cold fixed) never un-breaches."""
    lo, hi = sorted((x, y))
    rule = StreamSkew(max_share=0.6, min_total_rate=10.0)

    def snap(hot_rate):
        return SignalSnapshot(
            at=0.0, streams=("S1", "S2"), provisioned=("S1", "S2"),
            pending_subscription=False,
            decide_rate={"S1": hot_rate, "S2": cold},
        )

    before = rule.evaluate(snap(lo))
    if before is not None and before.stream == "S1":
        after = rule.evaluate(snap(hi))
        assert after is not None and after.stream == "S1"


@settings(max_examples=200, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=5000.0,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=5000.0,
              allow_nan=False, allow_infinity=False),
)
def test_slow_stream_slo_is_monotone_in_the_slow_latency(x, y):
    lo, hi = sorted((x, y))
    rule = SlowStreamSlo(stall_ms=50.0, healthy_ms=25.0)

    def snap(slow_p99):
        return SignalSnapshot(
            at=0.0, streams=("S1", "S2"), provisioned=("S1", "S2"),
            pending_subscription=False,
            decide_rate={"S1": 10.0, "S2": 10.0},
            decide_p99_ms={"S1": slow_p99, "S2": 5.0},
        )

    before = rule.evaluate(snap(lo))
    if before is not None:
        after = rule.evaluate(snap(hi))
        assert after is not None and after.stream == "S1"


def test_slow_stream_slo_global_slowness_is_not_a_ring_problem():
    """When every stream is slow, replacing one ring fixes nothing."""
    rule = SlowStreamSlo(stall_ms=50.0, healthy_ms=25.0)
    snap = SignalSnapshot(
        at=0.0, streams=("S1", "S2"), provisioned=("S1", "S2"),
        pending_subscription=False,
        decide_p99_ms={"S1": 200.0, "S2": 150.0},
    )
    assert rule.evaluate(snap) is None
