"""Unit tests for the signal plane (repro.elasticity.signals).

The sim source is exercised end-to-end by the acceptance scenarios;
here we pin the snapshot contract itself plus the live source's
watchdog-alert ingestion (monkeypatched HTTP, no sockets).
"""

from __future__ import annotations

import asyncio

from repro.elasticity.signals import HttpSignalSource, SignalSnapshot


def test_snapshot_alerts_default_to_empty():
    snap = SignalSnapshot(
        at=0.0, streams=("S1",), provisioned=("S1",),
        pending_subscription=False,
    )
    assert snap.alerts == ()


def test_http_source_collects_node_alerts(monkeypatch):
    """The live source rolls each node's active watchdog alerts into
    the snapshot as sorted ``node:detector`` strings, so a policy can
    refuse to reconfigure an already-anomalous cluster."""
    payloads = {
        ("h1", 1, "/metrics.json"): {"counters": [], "histograms": []},
        ("h1", 1, "/health"): {
            "streams": {"S1": {}}, "replicas": {},
            "alerts": [
                {"detector": "backpressure", "severity": "warning"},
                {"detector": "watermark_stall", "severity": "critical"},
            ],
        },
        ("h2", 2, "/metrics.json"): {"counters": [], "histograms": []},
        ("h2", 2, "/health"): {
            "streams": {"S1": {}}, "replicas": {},
            "alerts": [{"detector": "clock_drift"}],
        },
    }

    async def fake_get(host, port, path):
        return payloads[(host, port, path)]

    import repro.runtime.telemetry as telemetry
    monkeypatch.setattr(telemetry, "http_get_json", fake_get)

    source = HttpSignalSource(
        {"n1": ("h1", 1), "n2": ("h2", 2)}, clock=lambda: 3.0
    )
    snap = asyncio.run(source.sample())
    assert snap.at == 3.0
    assert snap.alerts == (
        "n1:backpressure", "n1:watermark_stall", "n2:clock_drift"
    )

    # A node whose health omits the field contributes nothing.
    payloads[("h2", 2, "/health")] = {"streams": {}, "replicas": {}}
    snap = asyncio.run(source.sample())
    assert snap.alerts == ("n1:backpressure", "n1:watermark_stall")
