"""Flight-recorder regression test: an invariant violation during a
fault-injection run must write a JSONL dump containing the violating
message's full causal history (submit -> propose -> Phase 2 -> learn ->
deliver) plus a self-describing ``meta.violation`` header.
"""

import json
import os

import pytest

from repro.faults import InvariantViolation, ScenarioRunner
from repro.faults.invariants import DeliveryRecord
from repro.faults.runner import FLIGHT_DIR_ENV
from repro.faults.scenarios import ScenarioSpec
from repro.faults.schedule import Schedule
from repro.obs import validate_file


def _quiet_spec() -> ScenarioSpec:
    """A fault-free scenario: the violation is seeded by the test."""
    return ScenarioSpec(
        name="flight-regression",
        description="fault-free run used to exercise the flight recorder",
        streams=("S1",),
        groups={"G1": ("S1",)},
        duration=2.0,
        schedule=lambda _seed: Schedule(name="none", actions=()),
        load_rate=80.0,
    )


def _mentions(event: dict, msg_id: int) -> bool:
    return (
        event.get("msg_id") == msg_id
        or msg_id in (event.get("msg_ids") or ())
    )


def test_violation_dump_contains_causal_history(tmp_path, monkeypatch):
    monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
    runner = ScenarioRunner(_quiet_spec(), seed=1)
    env = runner.cluster.env
    sabotaged: dict[str, int] = {}

    def sabotage():
        # Replay an already-delivered record: its position is no longer
        # strictly increasing, so the next periodic check raises the
        # gap-free-monotone invariant against a *real* message whose
        # whole lifecycle sits in the flight recorder.
        log = runner.suite.logs["G1/r1"]
        assert log.records, "no deliveries before the sabotage point"
        first = log.records[0]
        sabotaged["msg_id"] = first.msg_id
        log.append(
            DeliveryRecord(
                stream=first.stream,
                position=first.position,
                msg_id=first.msg_id,
                payload=first.payload,
                at=env.now,
            )
        )

    env.call_at(1.0, sabotage)
    with pytest.raises(InvariantViolation) as excinfo:
        runner.run()
    violation = excinfo.value
    msg_id = sabotaged["msg_id"]
    assert violation.msg_id == msg_id

    # The exception carries the dump path; the dump exists where
    # $REPRO_FLIGHT_DIR points and is named after (scenario, seed).
    path = violation.dump_path
    assert path == os.path.join(str(tmp_path), "flight-regression-seed1.jsonl")
    assert os.path.exists(path)
    assert validate_file(path) > 0

    with open(path, encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle]

    # Self-describing header.
    header = events[0]
    assert header["kind"] == "meta.violation"
    assert header["seq"] == -1
    assert header["scenario"] == "flight-regression"
    assert header["seed"] == 1
    assert header["msg_id"] == msg_id
    assert "strictly increasing" in header["message"]

    # The violating message's full causal history is in the dump.
    history_kinds = {e["kind"] for e in events[1:] if _mentions(e, msg_id)}
    assert {
        "client.submit",
        "coord.propose",
        "coord.phase2",
        "learner.learned",
        "replica.deliver",
        "invariant.violation",
    } <= history_kinds

    # The in-memory recorder agrees with the file.
    recorded = runner.recorder.causal_history(msg_id)
    assert {e["kind"] for e in recorded} == history_kinds


def test_clean_run_writes_no_dump(tmp_path, monkeypatch):
    monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
    runner = ScenarioRunner(_quiet_spec(), seed=1)
    result = runner.run()
    assert result.converged
    assert os.listdir(str(tmp_path)) == []
    # The recorder still holds the run's history, bounded by capacity.
    assert len(runner.recorder) > 0
    assert len(runner.recorder) <= runner.recorder.capacity


def test_runner_rides_on_externally_installed_tracer(tmp_path):
    from repro.obs import ListSink, Tracer, installed

    sink = ListSink()
    tracer = Tracer(sinks=[sink])
    with installed(tracer):
        runner = ScenarioRunner(_quiet_spec(), seed=1)
    assert runner.tracer is tracer
    runner.run()
    # The external sink and the flight recorder both saw the run.
    assert sink.events
    assert len(runner.recorder) > 0
