"""The hot-shard fault scenario: Zipfian skew burst + delay spike +
a mid-storm relief subscription, scripted (the elasticity harness's
closed-loop twin lives in tests/elasticity)."""

from repro.faults.runner import run_scenario
from repro.faults.scenarios import SCENARIOS, get_scenario

_CACHE: dict = {}


def _run(seed=1):
    if seed not in _CACHE:
        _CACHE[seed] = run_scenario(get_scenario("hot-shard"), seed=seed)
    return _CACHE[seed]


def test_hot_shard_is_registered():
    assert "hot-shard" in SCENARIOS
    spec = get_scenario("hot-shard")
    assert spec.load_share is not None
    # The skew burst is hot on S1, cold on S2, and only mid-run.
    assert spec.load_share("S1", 2.0) > 1.0 > spec.load_share("S2", 2.0)
    assert spec.load_share("S1", 0.5) == spec.load_share("S1", 3.5) == 1.0


def test_hot_shard_converges_with_invariants_green():
    result = _run()
    assert result.converged, result.report()
    assert result.checks_run > 0
    counts = set(result.delivered.values())
    assert len(counts) == 1 and counts.pop() > 0


def test_hot_shard_is_deterministic_per_seed():
    assert _run().digest == run_scenario(get_scenario("hot-shard")).digest
