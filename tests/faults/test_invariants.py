"""The invariant checkers must catch seeded violations.

These tests drive :class:`repro.faults.invariants.InvariantSuite`
through stub replicas so each safety property can be broken in
isolation and shown to raise :class:`InvariantViolation`.
"""

import types

import pytest

from repro.faults import InvariantSuite, InvariantViolation


class StubReplica:
    """Duck-typed stand-in for a MulticastReplica."""

    def __init__(self, group, subscriptions=("S1",)):
        self.group = group
        self.subscriptions = tuple(subscriptions)
        self.env = types.SimpleNamespace(now=0.0)
        self.merger = types.SimpleNamespace(
            stats=types.SimpleNamespace(merge_points={})
        )
        self._observers = []

    def add_delivery_observer(self, observer):
        self._observers.append(observer)

    def deliver(self, msg_id, stream, position, payload=None):
        value = types.SimpleNamespace(
            msg_id=msg_id,
            payload=payload if payload is not None else msg_id,
        )
        for observer in self._observers:
            observer(value, stream, position)


def make_suite(**replicas):
    return InvariantSuite(replicas), replicas


def test_clean_logs_pass():
    suite, rs = make_suite(r1=StubReplica("G1"), r2=StubReplica("G1"))
    for r in rs.values():
        r.deliver(1, "S1", 0)
        r.deliver(2, "S1", 1)
    suite.check()
    suite.assert_converged()


def test_stream_agreement_violation_detected():
    suite, rs = make_suite(r1=StubReplica("G1"), r2=StubReplica("G2"))
    rs["r1"].deliver(1, "S1", 0)
    rs["r2"].deliver(2, "S1", 0)   # same position, different value
    with pytest.raises(InvariantViolation, match="stream agreement"):
        suite.check()


def test_prefix_divergence_detected():
    suite, rs = make_suite(r1=StubReplica("G1"), r2=StubReplica("G1"))
    rs["r1"].deliver(1, "S1", 0)
    rs["r1"].deliver(2, "S1", 1)
    rs["r2"].deliver(1, "S1", 0)
    rs["r2"].deliver(3, "S2", 0)   # diverges at delivery #1
    with pytest.raises(InvariantViolation, match="diverges"):
        suite.check()


def test_non_monotone_position_detected():
    suite, rs = make_suite(r1=StubReplica("G1"))
    rs["r1"].deliver(1, "S1", 1)
    rs["r1"].deliver(2, "S1", 1)   # repeated position
    with pytest.raises(InvariantViolation, match="strictly increasing"):
        suite.check()


def test_delivery_order_cycle_detected():
    suite, rs = make_suite(r1=StubReplica("G1"), r2=StubReplica("G2"))
    # Two groups deliver the same pair in opposite relative order.
    rs["r1"].deliver(1, "S1", 0)
    rs["r1"].deliver(2, "S2", 0)
    rs["r2"].deliver(2, "S2", 0)
    rs["r2"].deliver(1, "S1", 0)
    with pytest.raises(InvariantViolation, match="cycle"):
        suite.check()


def test_merge_point_disagreement_detected():
    suite, rs = make_suite(r1=StubReplica("G1"), r2=StubReplica("G1"))
    rs["r1"].merger.stats.merge_points[7] = ("S2", 100)
    rs["r2"].merger.stats.merge_points[7] = ("S2", 101)
    with pytest.raises(InvariantViolation, match="merge point"):
        suite.check()


def test_divergent_replay_detected_across_rewind():
    """A recovering replica may legitimately re-deliver its suffix --
    but replaying a *different* value at a seen position must raise
    even though the log was rewound."""
    suite, rs = make_suite(r1=StubReplica("G1"))
    rs["r1"].deliver(1, "S1", 0)
    rs["r1"].deliver(2, "S1", 1)
    suite.check()                      # memorises position -> value
    mark = suite.mark("r1")
    suite.rewind("r1", 0)
    rs["r1"].deliver(1, "S1", 0)
    rs["r1"].deliver(9, "S1", 1)       # replay diverges
    with pytest.raises(InvariantViolation, match="replay diverged"):
        suite.check()
    assert mark == 2
    assert suite.logs["r1"].rewinds == 1


def test_faithful_replay_passes_after_rewind():
    suite, rs = make_suite(r1=StubReplica("G1"))
    rs["r1"].deliver(1, "S1", 0)
    rs["r1"].deliver(2, "S1", 1)
    suite.check()
    suite.rewind("r1", 1)
    rs["r1"].deliver(2, "S1", 1)       # identical replay
    suite.check()
    assert [r.msg_id for r in suite.logs["r1"].records] == [1, 2]


def test_convergence_failure_reported():
    suite, rs = make_suite(r1=StubReplica("G1"), r2=StubReplica("G1"))
    rs["r1"].deliver(1, "S1", 0)
    suite.check()                      # prefix-consistent (r2 is behind) ...
    with pytest.raises(InvariantViolation, match="did not converge"):
        suite.assert_converged()       # ... but not converged
