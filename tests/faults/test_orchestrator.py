"""Unit tests for the fault orchestrator against a bare network."""

from repro.faults import (
    CrashAt,
    DuplicateWindow,
    FaultOrchestrator,
    LossWindow,
    PartitionWindow,
    RecoverAt,
    Schedule,
)
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_net():
    env = Environment()
    net = Network(env, rng=RngRegistry(3), default_link=LinkSpec(latency=0.001))
    for name in ("a", "b"):
        net.add_host(name)
    return env, net


def test_partition_window_applied_and_lifted():
    env, net = make_net()
    orch = FaultOrchestrator(env, net)
    orch.execute(
        Schedule(
            name="t",
            actions=(
                PartitionWindow(start=0.1, end=0.3, side_a=("a",), side_b=("b",)),
            ),
        )
    )
    env.run(until=0.2)
    assert net.is_partitioned("a", "b")
    env.run(until=0.4)
    assert not net.is_partitioned("a", "b")
    assert [text for _at, text in orch.events] == [
        "begin partition {a} | {b}",
        "end partition {a} | {b}",
    ]


def test_overlay_windows_install_and_remove_rules():
    env, net = make_net()
    orch = FaultOrchestrator(env, net)
    orch.execute(
        Schedule(
            name="t",
            actions=(
                LossWindow(start=0.1, end=0.5, loss=1.0, src=("a",)),
                DuplicateWindow(start=0.2, end=0.3, probability=1.0),
            ),
        )
    )
    env.run(until=0.25)
    assert len(net._fault_rules) == 2
    env.run(until=0.4)
    assert len(net._fault_rules) == 1
    env.run(until=0.6)
    assert net._fault_rules == []


def test_crash_and_recover_via_host():
    env, net = make_net()
    orch = FaultOrchestrator(env, net)
    orch.execute(
        Schedule(
            name="t",
            actions=(
                CrashAt(at=0.1, target="b"),
                RecoverAt(at=0.2, target="b"),
            ),
        )
    )
    env.run(until=0.15)
    assert net.host("b").crashed
    env.run(until=0.25)
    assert not net.host("b").crashed


def test_crash_and_recover_hooks_take_precedence():
    env, net = make_net()
    calls = []
    orch = FaultOrchestrator(
        env,
        net,
        crash_hooks={"b": lambda: calls.append("crash")},
        recover_hooks={"b": lambda: calls.append("recover")},
    )
    orch.execute(
        Schedule(
            name="t",
            actions=(
                CrashAt(at=0.1, target="b"),
                RecoverAt(at=0.2, target="b"),
            ),
        )
    )
    env.run(until=0.3)
    assert calls == ["crash", "recover"]
    assert not net.host("b").crashed   # the hook owned the transition
