"""Unit tests for the fault-schedule DSL and the RandomChaos generator."""

import pytest

from repro.faults import (
    CrashAt,
    DuplicateWindow,
    LossWindow,
    PartitionWindow,
    RandomChaos,
    RecoverAt,
    ReorderWindow,
    Schedule,
)


def test_schedule_rejects_negative_point_time():
    with pytest.raises(ValueError, match="before t=0"):
        Schedule(name="bad", actions=(CrashAt(at=-0.1, target="r1"),))


def test_schedule_rejects_empty_window():
    with pytest.raises(ValueError, match="empty or negative"):
        Schedule(
            name="bad",
            actions=(LossWindow(start=0.5, end=0.5, loss=0.1),),
        )
    with pytest.raises(ValueError, match="empty or negative"):
        Schedule(
            name="bad",
            actions=(LossWindow(start=0.5, end=0.2, loss=0.1),),
        )


def test_schedule_horizon_and_events():
    schedule = Schedule(
        name="s",
        actions=(
            CrashAt(at=0.5, target="r1"),
            RecoverAt(at=0.9, target="r1"),
            PartitionWindow(start=0.2, end=1.4, side_a=("a",), side_b=("b",)),
        ),
    )
    assert len(schedule) == 3
    assert schedule.horizon == 1.4
    times = [at for at, _desc in schedule.events()]
    assert times == sorted(times)
    assert times == [0.2, 0.5, 0.9, 1.4]
    assert Schedule(name="empty").horizon == 0.0


def test_action_descriptions():
    assert CrashAt(at=1.0, target="r1").describe() == "crash r1"
    assert "50%" in DuplicateWindow(start=0, end=1, probability=0.5).describe()
    assert "a->*" in LossWindow(start=0, end=1, loss=0.1, src=("a",)).describe()
    window = ReorderWindow(start=0, end=1, probability=0.2, spread=0.004)
    assert "4.0ms" in window.describe()


def test_random_chaos_is_deterministic():
    kwargs = dict(
        horizon=4.0,
        crash_targets=("r1", "r2"),
        partition_cuts=((("r1",), ("a1",)), (("r2",), ("a2",))),
    )
    assert (
        RandomChaos(seed=5, **kwargs).generate()
        == RandomChaos(seed=5, **kwargs).generate()
    )
    assert (
        RandomChaos(seed=5, **kwargs).generate()
        != RandomChaos(seed=6, **kwargs).generate()
    )


def test_random_chaos_respects_warmup_and_quiet_tail():
    chaos = RandomChaos(
        seed=9,
        horizon=10.0,
        crash_targets=("r1",),
        partition_cuts=((("r1",), ("a1",)),),
        warmup=0.5,
        quiet_tail=0.3,
    )
    schedule = chaos.generate()
    active_end = 10.0 * (1 - 0.3)
    assert schedule.horizon <= active_end
    for at, _desc in schedule.events():
        assert 0.5 <= at <= active_end


def test_random_chaos_crash_windows_never_overlap_per_target():
    schedule = RandomChaos(
        seed=13,
        horizon=6.0,
        crash_targets=("r1",),
        n_crashes=4,
    ).generate()
    spans = []
    down_since = None
    for at, desc in schedule.events():
        if desc == "crash r1":
            assert down_since is None, "crashed while already down"
            down_since = at
        elif desc == "recover r1":
            assert down_since is not None
            spans.append((down_since, at))
            down_since = at  # recover precedes any further crash
            down_since = None
    for (_s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert s2 > e1


def test_random_chaos_without_targets_has_no_crashes_or_partitions():
    schedule = RandomChaos(seed=2, horizon=3.0).generate()
    assert not any(
        isinstance(a, (CrashAt, RecoverAt, PartitionWindow))
        for a in schedule.actions
    )
    assert len(schedule) == 4   # loss + delay + duplicate + reorder
