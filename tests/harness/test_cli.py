"""Unit tests for the CLI (parser wiring; experiments covered elsewhere)."""

import pytest

from repro.cli import build_parser


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


@pytest.mark.parametrize("command", ["fig3", "fig4", "fig5", "provisioning", "all"])
def test_all_commands_parse(command):
    args = build_parser().parse_args([command])
    assert args.command == command
    assert args.seed == 1


def test_fig3_flags():
    args = build_parser().parse_args(["fig3", "--duration", "30", "--prepare",
                                      "--seed", "9"])
    assert args.duration == 30.0
    assert args.prepare is True
    assert args.seed == 9


def test_fig5_no_prepare_flag():
    args = build_parser().parse_args(["fig5", "--no-prepare"])
    assert args.no_prepare is True


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig9"])


# -- observability subcommands ------------------------------------------------


def test_trace_command_parses():
    args = build_parser().parse_args(
        ["trace", "fig3", "--out", "t.jsonl", "--duration", "5",
         "--categories", "all", "--seed", "4"]
    )
    assert args.command == "trace"
    assert args.experiment == "fig3"
    assert args.out == "t.jsonl"
    assert args.duration == 5.0
    assert args.categories == "all"
    assert args.seed == 4


def test_trace_requires_known_experiment(capsys):
    # The positional also accepts file paths (for --follow), so the
    # experiment check lives in the handler, not the parser.
    from repro.cli import main

    assert main(["trace", "faults", "--out", "t.jsonl"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_rejects_unknown_categories(tmp_path, capsys):
    from repro.cli import main

    code = main(["trace", "fig3", "--out", str(tmp_path / "t.jsonl"),
                 "--categories", "coord,frobnicate"])
    assert code == 2
    assert "unknown categories" in capsys.readouterr().err


def test_stats_and_validate_parse():
    args = build_parser().parse_args(["stats", "t.jsonl"])
    assert args.command == "stats" and args.trace == "t.jsonl"
    args = build_parser().parse_args(["validate-trace", "t.jsonl"])
    assert args.command == "validate-trace"


def test_validate_trace_exit_codes(tmp_path, capsys):
    from repro.cli import main

    good = tmp_path / "good.jsonl"
    good.write_text(
        '{"ts":0.0,"seq":0,"kind":"net.heal","cat":"net"}\n'
    )
    assert main(["validate-trace", str(good)]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ts":0.0,"seq":0,"kind":"no.such.kind","cat":"x"}\n')
    assert main(["validate-trace", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_stats_reports_stage_table(tmp_path, capsys):
    import json

    from repro.cli import main

    events = [
        {"ts": 0.0, "seq": 0, "kind": "client.submit", "cat": "client",
         "client": "c", "stream": "S1", "msg_id": 1, "size": 8},
        {"ts": 0.1, "seq": 1, "kind": "coord.propose", "cat": "coord",
         "coordinator": "S1/coord", "stream": "S1", "type": "AppValue",
         "msg_id": 1},
        {"ts": 0.2, "seq": 2, "kind": "coord.phase2", "cat": "coord",
         "coordinator": "S1/coord", "stream": "S1", "instance": 0,
         "msg_ids": [1], "positions": [0]},
        {"ts": 0.3, "seq": 3, "kind": "coord.decide", "cat": "coord",
         "coordinator": "S1/coord", "stream": "S1", "instance": 0,
         "positions": [0]},
        {"ts": 0.4, "seq": 4, "kind": "learner.learned", "cat": "learner",
         "replica": "G1/r1", "stream": "S1", "instance": 0,
         "msg_ids": [1], "positions": [0]},
        {"ts": 0.5, "seq": 5, "kind": "replica.deliver", "cat": "replica",
         "replica": "G1/r1", "group": "G1", "stream": "S1",
         "position": 0, "msg_id": 1},
    ]
    trace = tmp_path / "trace.jsonl"
    trace.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    assert main(["stats", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "complete lifecycles  : 1" in out
    assert "submit->deliver" in out
    assert "500.00" in out   # 0.5 s end-to-end rendered in ms


# -- `all` routes through the real per-command parsers ------------------------


def test_all_reparses_each_experiment_and_propagates_failure(monkeypatch):
    import repro.cli as cli

    seen = {}

    def stub(name, code=None):
        def handler(args):
            # The sub-args came from the real parser: per-command
            # defaults (e.g. fig5's duration=70) must be present.
            seen[name] = args
            return code
        return handler

    monkeypatch.setitem(cli._DISPATCH, "fig3", stub("fig3"))
    monkeypatch.setitem(cli._DISPATCH, "fig4", stub("fig4", code=3))
    monkeypatch.setitem(cli._DISPATCH, "fig5", stub("fig5"))
    monkeypatch.setitem(cli._DISPATCH, "provisioning", stub("provisioning"))

    assert cli.main(["all", "--seed", "7"]) == 3
    assert set(seen) == {"fig3", "fig4", "fig5", "provisioning"}
    assert all(args.seed == 7 for args in seen.values())
    assert seen["fig3"].duration == 60.0
    assert seen["fig5"].duration == 70.0
    assert seen["fig5"].no_prepare is False
    assert seen["fig3"].prepare is False


def test_all_returns_zero_when_every_experiment_passes(monkeypatch):
    import repro.cli as cli

    for name in ("fig3", "fig4", "fig5", "provisioning"):
        monkeypatch.setitem(cli._DISPATCH, name, lambda args: None)
    assert cli.main(["all"]) == 0


def test_live_telemetry_flags_parse():
    args = build_parser().parse_args([
        "live", "--nodes", "2", "--telemetry-dir", "/tmp/t",
        "--clock-skew", "0.5",
    ])
    assert args.command == "live"
    assert args.nodes == 2
    assert args.telemetry_dir == "/tmp/t"
    assert args.clock_skew == 0.5
    defaults = build_parser().parse_args(["live"])
    assert defaults.nodes == 1 and defaults.telemetry_dir is None


def test_trace_merge_command(tmp_path, capsys):
    import json

    from repro.cli import main

    n1 = tmp_path / "n1.jsonl"
    n1.write_text(
        '{"ts":0.0,"seq":0,"kind":"meta.node","cat":"meta",'
        '"node":"n1","clock":"wall"}\n'
        '{"ts":1.0,"seq":1,"kind":"client.submit","cat":"client",'
        '"node":"n1","client":"c","stream":"s1","msg_id":3,"size":64}\n'
    )
    n2 = tmp_path / "n2.jsonl"
    n2.write_text(
        '{"ts":0.0,"seq":0,"kind":"meta.node","cat":"meta",'
        '"node":"n2","clock":"wall"}\n'
        '{"ts":1.5,"seq":1,"kind":"replica.deliver","cat":"replica",'
        '"node":"n2","replica":"r1","group":"g1","stream":"s1",'
        '"position":0,"msg_id":3}\n'
    )
    out = tmp_path / "merged.jsonl"
    assert main(["trace-merge", str(n1), str(n2), "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "2 nodes" in printed
    assert "more than one node: 1" in printed
    merged = [json.loads(line) for line in out.read_text().splitlines()]
    assert merged[0]["kind"] == "meta.merge"
    assert main(["validate-trace", str(out)]) == 0


def test_top_accepts_directory_or_file(tmp_path):
    args = build_parser().parse_args(["top", str(tmp_path)])
    assert args.command == "top"
    assert args.interval == 1.0 and args.iterations is None
    assert args.timeout == 0.5       # per-node scrape bound: no hangs
    args = build_parser().parse_args([
        "top", "e.json", "--interval", "0.5", "--iterations", "3",
        "--no-clear", "--timeout", "0.2",
    ])
    assert args.interval == 0.5 and args.iterations == 3
    assert args.no_clear is True
    assert args.timeout == 0.2


# -- trace --follow / watch ---------------------------------------------------


def test_trace_follow_and_watch_flags_parse():
    args = build_parser().parse_args([
        "trace", "n1.trace.jsonl", "--follow", "--max-events", "5",
        "--idle-timeout", "2",
    ])
    assert args.follow is True
    assert args.max_events == 5 and args.idle_timeout == 2.0
    args = build_parser().parse_args([
        "watch", "run-dir", "--follow", "--out", "alerts.jsonl",
        "--fail-on-alert", "--stall-after", "1.5",
    ])
    assert args.command == "watch"
    assert args.follow is True and args.fail_on_alert is True
    assert args.out == "alerts.jsonl" and args.stall_after == 1.5


def test_trace_follow_tails_a_static_file(tmp_path, capsys):
    import json

    from repro.cli import main

    trace = tmp_path / "n1.trace.jsonl"
    lines = [
        '{"ts":0.0,"seq":0,"kind":"net.heal","cat":"net"}',
        '{"ts":1.0,"seq":1,"kind":"net.heal","cat":"net"}',
        '{"ts":2.0,"seq":2,"kind":"net.heal","cat":"net"}',
    ]
    trace.write_text("\n".join(lines) + "\n")
    # --max-events bounds the tail so a static file terminates.
    assert main(["trace", str(trace), "--follow", "--max-events", "2",
                 "--interval", "0.01"]) == 0
    captured = capsys.readouterr()
    emitted = [json.loads(line) for line in captured.out.splitlines()]
    assert [e["seq"] for e in emitted] == [0, 1]
    assert "2 events" in captured.err
    # --idle-timeout ends the tail once the file goes quiet.
    assert main(["trace", str(trace), "--follow", "--interval", "0.01",
                 "--idle-timeout", "0.05"]) == 0
    captured = capsys.readouterr()
    assert len(captured.out.splitlines()) == 3


def test_trace_follow_missing_file_needs_idle_timeout(tmp_path, capsys):
    from repro.cli import main

    assert main(["trace", str(tmp_path / "nope.jsonl"), "--follow"]) == 2
    assert "no such trace file" in capsys.readouterr().err
