"""Unit tests for the CLI (parser wiring; experiments covered elsewhere)."""

import pytest

from repro.cli import build_parser


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


@pytest.mark.parametrize("command", ["fig3", "fig4", "fig5", "provisioning", "all"])
def test_all_commands_parse(command):
    args = build_parser().parse_args([command])
    assert args.command == command
    assert args.seed == 1


def test_fig3_flags():
    args = build_parser().parse_args(["fig3", "--duration", "30", "--prepare",
                                      "--seed", "9"])
    assert args.duration == 30.0
    assert args.prepare is True
    assert args.seed == 9


def test_fig5_no_prepare_flag():
    args = build_parser().parse_args(["fig5", "--no-prepare"])
    assert args.no_prepare is True


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig9"])
