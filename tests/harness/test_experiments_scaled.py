"""Scaled-down runs of every experiment: the shapes must already hold.

The benchmarks run the full paper-sized experiments; these tests run
miniature versions so the whole suite stays fast while still covering
the experiment code paths end to end.
"""

import pytest

from repro.baselines import (
    BaselineReconfigConfig,
    SkipAblationConfig,
    StaticBroadcastConfig,
    run_membership_command_reconfig,
    run_skip_ablation,
    run_static_broadcast,
    run_stop_restart_reconfig,
)
from repro.harness.experiments import (
    HorizontalConfig,
    ReconfigConfig,
    VerticalConfig,
    run_horizontal,
    run_reconfig,
    run_vertical,
)
from repro.metrics import is_monotonic_increasing


def test_vertical_miniature_staircase():
    config = VerticalConfig(
        n_streams=3,
        add_interval=3.0,
        duration=9.0,
        per_stream_limit=200.0,
        replica_cpu_rate=1000.0,
        lam=500,
        delta_t=0.05,
    )
    result = run_vertical(config)
    assert len(result.interval_averages) == 3
    assert is_monotonic_increasing(result.interval_averages, tolerance=0.05)
    assert result.interval_averages[1] > 1.5 * result.interval_averages[0]
    assert result.subscribe_times == pytest.approx([3.0, 6.0])


def test_vertical_with_prepare_has_smaller_dip():
    base = dict(
        n_streams=2, add_interval=4.0, duration=8.0,
        per_stream_limit=200.0, replica_cpu_rate=1000.0,
        lam=500, delta_t=0.05, recovery_instance_cost=0.01,
    )
    without = run_vertical(VerticalConfig(use_prepare=False, **base))
    with_hint = run_vertical(VerticalConfig(use_prepare=True, **base))
    floor_without = min(v for t, v in without.throughput if 4.0 <= t <= 7.0)
    floor_with = min(v for t, v in with_hint.throughput if 4.0 <= t <= 7.0)
    assert floor_with > floor_without


def test_horizontal_miniature_halving():
    config = HorizontalConfig(
        duration=24.0,
        split_at=10.0,
        inform_delay=2.0,
        n_threads=30,
        replica_cpu_rate=1500.0,
        lam=1000,
        delta_t=0.05,
        seed=4,
    )
    result = run_horizontal(config)
    ba = result.before_after
    assert ba["r1_ops_after"] / ba["r1_ops_before"] == pytest.approx(0.5, abs=0.12)
    assert ba["r2_ops_after"] / ba["r2_ops_before"] == pytest.approx(0.5, abs=0.12)
    assert ba["client_after"] / ba["client_before"] == pytest.approx(1.0, abs=0.15)
    assert result.timeouts > 0


def test_reconfig_miniature_switch():
    config = ReconfigConfig(
        duration=20.0,
        prepare_at=8.0,
        subscribe_at=10.0,
        n_threads=10,
        think_time=0.01,
        lam=1000,
        delta_t=0.05,
    )
    result = run_reconfig(config)
    assert result.timeouts == 0
    s1_tail = [v for t, v in result.per_stream["S1"] if t >= 14.0]
    s2_tail = [v for t, v in result.per_stream["S2"] if t >= 14.0]
    assert max(s1_tail) == 0
    assert min(s2_tail) > 0
    assert result.overhead_ratio < 0.35


def test_static_broadcast_stays_flat():
    config = StaticBroadcastConfig(
        duration=12.0,
        add_threads_interval=3.0,
        n_steps=3,
        stream_limit=200.0,
        replica_cpu_rate=1000.0,
        lam=500,
        delta_t=0.05,
    )
    result = run_static_broadcast(config)
    # More threads, same single stream: the cap does not move.
    first, last = result.interval_averages[0], result.interval_averages[-1]
    assert last <= 1.25 * first
    assert result.scaling_factor < 1.3


def test_skip_ablation_shapes():
    on = run_skip_ablation(SkipAblationConfig(duration=6.0, skip_enabled=True))
    off = run_skip_ablation(SkipAblationConfig(duration=6.0, skip_enabled=False))
    assert on.delivered_rate > 10
    assert off.merge_blocked


def test_reconfig_baselines_miniature():
    config = BaselineReconfigConfig(
        duration=24.0,
        reconfigure_at=10.0,
        n_threads=10,
        think_time=0.01,
        restart_downtime=4.0,
        lam=1000,
        delta_t=0.05,
    )
    stop = run_stop_restart_reconfig(config)
    assert stop.downtime_seconds >= 3.0
    assert stop.steady_rate > 0

    membership = run_membership_command_reconfig(config)
    assert membership.steady_rate > 0
    # Window=1 serialization never beats the pipelined deployment, and
    # the drain+Phase-1 switch dips visibly.
    assert membership.steady_rate <= 1.05 * stop.steady_rate
    assert membership.min_rate_during_switch < 0.9 * membership.steady_rate
