"""Unit tests for the report rendering helpers."""

from repro.harness.report import comparison_table, section, series_sparkline


def test_section_underlines_title():
    text = section("Hello")
    assert "Hello" in text
    assert "=====" in text


def test_comparison_table_alignment_and_header():
    table = comparison_table(
        [
            ("throughput", 2660.0, 2644.3),
            ("latency p95 (ms)", 8.3, 7.1),
            ("note", "none", "small"),
        ]
    )
    lines = table.splitlines()
    assert lines[0].startswith("metric")
    assert "paper" in lines[0] and "measured" in lines[0]
    assert "2,660" in table       # large floats get thousands separators
    assert "8.30" in table        # small floats keep two decimals
    assert "none" in table


def test_sparkline_scales_to_max():
    series = [(i, float(i)) for i in range(9)]
    line = series_sparkline(series)
    assert len(line) == 9
    assert line[0] == " "
    assert line[-1] == "█"


def test_sparkline_downsamples_long_series():
    series = [(i, 1.0) for i in range(500)]
    line = series_sparkline(series, width=60)
    assert len(line) == 60


def test_sparkline_empty_and_zero():
    assert series_sparkline([]) == "(no data)"
    assert set(series_sparkline([(0, 0.0), (1, 0.0)])) == {" "}


def test_sparkline_explicit_maximum():
    series = [(0, 50.0)]
    assert series_sparkline(series, maximum=100.0) in "▁▂▃▄▅"
