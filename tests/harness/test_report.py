"""Unit tests for the report rendering helpers."""

from repro.harness.report import comparison_table, section, series_sparkline


def test_section_underlines_title():
    text = section("Hello")
    assert "Hello" in text
    assert "=====" in text


def test_comparison_table_alignment_and_header():
    table = comparison_table(
        [
            ("throughput", 2660.0, 2644.3),
            ("latency p95 (ms)", 8.3, 7.1),
            ("note", "none", "small"),
        ]
    )
    lines = table.splitlines()
    assert lines[0].startswith("metric")
    assert "paper" in lines[0] and "measured" in lines[0]
    assert "2,660" in table       # large floats get thousands separators
    assert "8.30" in table        # small floats keep two decimals
    assert "none" in table


def test_sparkline_scales_to_max():
    series = [(i, float(i)) for i in range(9)]
    line = series_sparkline(series)
    assert len(line) == 9
    assert line[0] == " "
    assert line[-1] == "█"


def test_sparkline_downsamples_long_series():
    series = [(i, 1.0) for i in range(500)]
    line = series_sparkline(series, width=60)
    assert len(line) == 60


def test_sparkline_empty_and_zero():
    assert series_sparkline([]) == "(no data)"
    assert set(series_sparkline([(0, 0.0), (1, 0.0)])) == {" "}


def test_sparkline_explicit_maximum():
    series = [(0, 50.0)]
    assert series_sparkline(series, maximum=100.0) in "▁▂▃▄▅"


def test_sparkline_downsampling_covers_the_tail():
    # All-zero series with a spike in the last sample: the final bucket
    # must include it (a truncating bucketer would drop the tail).
    series = [(i, 0.0) for i in range(499)] + [(499, 499.0)]
    line = series_sparkline(series, width=60)
    assert len(line) == 60
    assert line[-1] != " "
    assert set(line[:-1]) == {" "}


def test_sparkline_downsampling_averages_buckets():
    # n=7 over width=3: integer edges [0, 2, 4, 7] -> bucket means
    # (1.5, 3.5, 6.0); the peak bucket renders the full block.
    series = [(i, float(i + 1)) for i in range(7)]
    line = series_sparkline(series, width=3)
    assert len(line) == 3
    assert line[2] == "█"
    assert line[0] < line[1] < line[2]


def test_sparkline_width_one_more_than_samples_is_not_downsampled():
    series = [(i, 1.0) for i in range(59)]
    assert len(series_sparkline(series, width=60)) == 59


def test_sparkline_every_sample_lands_in_exactly_one_bucket():
    # Weight conservation: with equal weights, the bucket means of a
    # constant series stay constant no matter how n and width divide.
    for n in (61, 100, 119, 120, 121):
        line = series_sparkline([(i, 5.0) for i in range(n)], width=60)
        assert len(line) == 60
        assert set(line) == {"█"}


def test_plain_table_aligns_and_underlines_header():
    from repro.harness.report import plain_table

    table = plain_table(
        ("stage", "n", "p95 ms"),
        [("submit->deliver", 100, 5.42), ("learn->deliver", 100, 0.51)],
    )
    lines = table.splitlines()
    assert lines[0].startswith("stage")
    assert set(lines[1]) <= {"-", " "}
    assert "submit->deliver" in lines[2]
    assert "5.42" in table
