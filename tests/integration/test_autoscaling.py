"""End-to-end autoscaling: measured load -> booted VMs -> new stream."""

import pytest

from repro.cloud import CloudCompute, ElasticityController
from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.multicast.api import MulticastClient
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry

LAM = 1000
CAPACITY = 300.0


def build(seed=81, boot_time=5.0):
    env = Environment()
    rng = RngRegistry(seed)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=0.001))
    compute = CloudCompute(env, boot_time=boot_time, boot_jitter=0.5, rng=rng)
    directory = {}

    def deploy(name):
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=LAM,
            delta_t=0.05,
            value_rate_limit=CAPACITY,
        )
        deployment = StreamDeployment(env, net, config)
        directory[name] = deployment
        deployment.start()
        return deployment

    for i in range(3):
        compute.create_server(f"S1-acc-{i}", anti_affinity_group="S1")
    deploy("S1")
    replica = BroadcastReplica(env, net, "replica", "replicas", directory,
                               cpu_rate=10_000)
    replica.bootstrap(["S1"])
    control = MulticastClient(env, net, "control", directory)
    client = BroadcastClient(env, net, "client", directory, value_size=512,
                             rng=rng.stream("c"))

    def provision(index, vms):
        name = f"S{index + 1}"
        deploy(name)
        control.subscribe_msg("replicas", name, via_stream="S1")
        client.start_threads(name, 8)

    controller = ElasticityController(
        env, compute, replica.delivered_ops,
        capacity_per_stream=CAPACITY,
        provision_stream=provision,
        high_watermark=0.8,
        sample_interval=2.0,
        max_streams=3,
    )
    controller.start()
    return env, compute, replica, client, controller


def test_controller_adds_stream_and_capacity_grows():
    env, compute, replica, client, controller = build()
    client.start_threads("S1", 8)   # saturates one stream's cap
    env.run(until=40.0)
    assert controller.scale_events, "never scaled"
    first_scale_at, streams = controller.scale_events[0]
    assert streams == 2
    assert first_scale_at > 5.0   # had to wait out the VM boot
    assert replica.subscriptions == ("S1", "S2")
    before = replica.delivered_ops.rate_between(2.0, 7.0)
    after = replica.delivered_ops.rate_between(30.0, 40.0)
    assert after > 1.3 * before
    # The booted acceptor VMs exist, anti-affinity respected.
    acceptor_vms = [n for n in compute.servers if "stream-1-acceptors" in n]
    assert len(acceptor_vms) == 3
    hosts = {compute.servers[n].physical_host for n in acceptor_vms}
    assert len(hosts) == 3


def test_controller_idle_load_never_scales():
    env, compute, replica, client, controller = build(seed=82)
    client.start_threads("S1", 1)   # far below the watermark
    env.run(until=30.0)
    assert controller.scale_events == []
    assert replica.subscriptions == ("S1",)
