"""Partial synchrony (§II): safety always, liveness after GST.

Network partitions injected mid-protocol: the affected operations block
(safety is never violated, nothing is delivered out of order) and
complete once the partition heals -- "GST" in the paper's model.
"""

from repro.multicast import MulticastClient, MulticastReplica, StreamDeployment
from repro.paxos import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_world(stream_names=("S1", "S2"), lam=500, delta_t=0.05, seed=61):
    env = Environment()
    net = Network(env, rng=RngRegistry(seed), default_link=LinkSpec(latency=0.001))
    directory = {}
    for name in stream_names:
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=lam,
            delta_t=delta_t,
        )
        directory[name] = StreamDeployment(env, net, config)
        directory[name].start()
    client = MulticastClient(env, net, "client", directory)
    return env, net, directory, client


def make_replica(env, net, directory, name, group, streams):
    delivered = []
    replica = MulticastReplica(
        env, net, name, group, directory,
        on_deliver=lambda v, s, p: delivered.append(v.payload),
    )
    replica.bootstrap(streams)
    return replica, delivered


def test_partitioned_stream_blocks_then_resumes():
    env, net, directory, client = make_world(("S1",))
    replica, delivered = make_replica(env, net, directory, "r1", "G", ["S1"])
    for i in range(5):
        client.multicast("S1", payload=("pre", i))
    env.run(until=0.5)
    assert len(delivered) == 5

    # Partition the coordinator from all acceptors: nothing decides.
    net.partition({"S1/coordinator"}, {"S1/a1", "S1/a2", "S1/a3"})
    for i in range(5):
        client.multicast("S1", payload=("during", i))
    env.run(until=2.0)
    assert len(delivered) == 5   # blocked, not lost, not reordered

    net.heal()
    env.run(until=5.0)
    payloads = [p for p in delivered]
    assert payloads[:5] == [("pre", i) for i in range(5)]
    # After GST the retransmit machinery pushes the blocked values through.
    assert set(payloads[5:]) == {("during", i) for i in range(5)}


def test_subscription_blocked_by_partition_completes_after_heal():
    env, net, directory, client = make_world()
    replica, delivered = make_replica(env, net, directory, "r1", "G", ["S1"])
    env.run(until=0.3)
    # The replica cannot reach S2's acceptors: the subscription's scan
    # of the new stream cannot proceed.
    net.partition({"r1"}, {"S2/a1", "S2/a2", "S2/a3"})
    client.subscribe_msg("G", new_stream="S2", via_stream="S1")
    env.run(until=1.5)
    assert replica.merger.pending_subscription == "S2"
    assert replica.subscriptions == ("S1",)

    net.heal()
    env.run(until=6.0)
    assert replica.merger.pending_subscription is None
    assert replica.subscriptions == ("S1", "S2")


def test_replica_partitioned_from_one_stream_stalls_merge_only():
    """A replica cut off from one of its streams stops delivering (the
    merge is strict) but catches up identically after healing."""
    env, net, directory, client = make_world()
    r1, d1 = make_replica(env, net, directory, "r1", "G1", ["S1", "S2"])
    r2, d2 = make_replica(env, net, directory, "r2", "G2", ["S1", "S2"])

    def load():
        for i in range(200):
            client.multicast("S1" if i % 2 else "S2", payload=i)
            yield env.timeout(0.01)

    env.process(load())
    env.run(until=0.5)
    net.partition({"r1"}, {"S2/a1", "S2/a2", "S2/a3"})
    env.run(until=1.5)
    # r1 is behind r2 (its S2 feed is cut)...
    assert len(d1) < len(d2)
    net.heal()
    env.run(until=6.0)
    # ...but converges to the identical sequence after the heal.
    assert d1 == d2
    assert len(d1) == 200
