"""Partial synchrony (§II): safety always, liveness after GST.

Network partitions injected mid-protocol: the affected operations block
(safety is never violated, nothing is delivered out of order) and
complete once the partition heals -- "GST" in the paper's model.
"""


def test_partitioned_stream_blocks_then_resumes(make_cluster):
    cluster = make_cluster(("S1",), seed=61)
    cluster.add_replica("r1", "G", ["S1"])
    net, client = cluster.network, cluster.client
    for i in range(5):
        client.multicast("S1", payload=("pre", i))
    cluster.run(until=0.5)
    assert len(cluster.delivered["r1"]) == 5

    # Partition the coordinator from all acceptors: nothing decides.
    net.partition({"S1/coordinator"}, {"S1/a1", "S1/a2", "S1/a3"})
    for i in range(5):
        client.multicast("S1", payload=("during", i))
    cluster.run(until=2.0)
    assert len(cluster.delivered["r1"]) == 5   # blocked, not lost, not reordered

    net.heal()
    cluster.run(until=5.0)
    payloads = cluster.payloads("r1")
    assert payloads[:5] == [("pre", i) for i in range(5)]
    # After GST the retransmit machinery pushes the blocked values through.
    assert set(payloads[5:]) == {("during", i) for i in range(5)}


def test_subscription_blocked_by_partition_completes_after_heal(make_cluster):
    cluster = make_cluster(("S1", "S2"), seed=61)
    replica = cluster.add_replica("r1", "G", ["S1"])
    net, client = cluster.network, cluster.client
    cluster.run(until=0.3)
    # The replica cannot reach S2's acceptors: the subscription's scan
    # of the new stream cannot proceed.
    net.partition({"r1"}, {"S2/a1", "S2/a2", "S2/a3"})
    client.subscribe_msg("G", new_stream="S2", via_stream="S1")
    cluster.run(until=1.5)
    assert replica.merger.pending_subscription == "S2"
    assert replica.subscriptions == ("S1",)

    net.heal()
    cluster.run(until=6.0)
    assert replica.merger.pending_subscription is None
    assert replica.subscriptions == ("S1", "S2")


def test_replica_partitioned_from_one_stream_stalls_merge_only(make_cluster):
    """A replica cut off from one of its streams stops delivering (the
    merge is strict) but catches up identically after healing."""
    cluster = make_cluster(("S1", "S2"), seed=61)
    cluster.add_replica("r1", "G1", ["S1", "S2"])
    cluster.add_replica("r2", "G2", ["S1", "S2"])
    env, net, client = cluster.env, cluster.network, cluster.client

    def load():
        for i in range(200):
            client.multicast("S1" if i % 2 else "S2", payload=i)
            yield env.timeout(0.01)

    env.process(load())
    cluster.run(until=0.5)
    net.partition({"r1"}, {"S2/a1", "S2/a2", "S2/a3"})
    cluster.run(until=1.5)
    # r1 is behind r2 (its S2 feed is cut)...
    assert len(cluster.delivered["r1"]) < len(cluster.delivered["r2"])
    net.heal()
    cluster.run(until=6.0)
    # ...but converges to the identical sequence after the heal.
    assert cluster.delivered["r1"] == cluster.delivered["r2"]
    assert len(cluster.delivered["r1"]) == 200
