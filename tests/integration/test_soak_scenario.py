"""Soak test: a long mixed scenario chaining every dynamic operation.

One simulated run that subscribes, unsubscribes, prepares, splits,
crashes and recovers -- verifying after every stage that all replicas
of a group agree and nothing is lost or reordered.
"""

import pytest

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.multicast import MulticastClient, MulticastReplica, StreamDeployment
from repro.paxos import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry
from repro.storage import CheckpointStore
from repro.workload import KeyspaceWorkload


def test_broadcast_soak_subscribe_unsubscribe_cycles():
    """Three subscription changes plus a crash/recovery, under load,
    with two replicas asserting identical delivery after every stage."""
    env = Environment()
    net = Network(env, rng=RngRegistry(71), default_link=LinkSpec(latency=0.001))
    directory = {}
    for name in ("S1", "S2", "S3"):
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=500,
            delta_t=0.05,
        )
        directory[name] = StreamDeployment(env, net, config)
        directory[name].start()
    client = MulticastClient(env, net, "client", directory)
    d1, d2 = [], []
    r1 = MulticastReplica(env, net, "r1", "G", directory,
                          on_deliver=lambda v, s, p: d1.append((v.payload, s)))
    r2 = MulticastReplica(env, net, "r2", "G", directory,
                          on_deliver=lambda v, s, p: d2.append((v.payload, s)))
    r1.bootstrap(["S1"])
    r2.bootstrap(["S1"])

    sent = {"S1": 0, "S2": 0, "S3": 0}

    def load():
        i = 0
        while True:
            # Round-robin over whatever both replicas subscribe to.
            subs = r1.subscriptions
            stream = subs[i % len(subs)]
            client.multicast(stream, payload=(stream, sent[stream]))
            sent[stream] += 1
            i += 1
            yield env.timeout(0.01)

    env.process(load())

    def script():
        yield env.timeout(1.0)
        client.subscribe_msg("G", "S2", via_stream="S1")        # stage 1
        yield env.timeout(1.5)
        client.prepare_msg("G", "S3", via_stream="S1")          # stage 2
        yield env.timeout(0.5)
        client.subscribe_msg("G", "S3", via_stream="S2")
        yield env.timeout(1.5)
        client.unsubscribe_msg("G", "S1")                       # stage 3
        yield env.timeout(1.5)

    script_proc = env.process(script())
    env.run(until=6.5)
    assert script_proc.triggered
    assert r1.subscriptions == ("S2", "S3")
    assert r2.subscriptions == ("S2", "S3")
    assert d1 == d2
    assert len(d1) > 300

    # Crash r2, keep loading, recover it from a checkpoint; it must
    # converge back to r1's sequence (including anything it missed).
    checkpoints = CheckpointStore()
    checkpoints.save(0, r2.make_checkpoint())
    r2.crash()
    env.run(until=8.0)
    r2.recover_from_checkpoint(checkpoints.latest().state)
    env.run(until=11.0)
    assert d1 == d2

    # Per-stream FIFO: what each stream's subscribers saw is a prefix
    # of what was sent to it, in order.
    for stream in ("S2", "S3"):
        seen = [payload[1] for payload, s in d1 if s == stream]
        assert seen == list(range(len(seen)))


def test_kvstore_soak_split_then_merge_back():
    """Split one shard into two, then merge them back; contents must
    end identical to an always-single-shard execution."""
    pmap = PartitionMap(
        version=0,
        partitions=(Partition(index=0, stream="S1", replicas=("r1", "r2")),),
    )
    cluster = KvCluster(seed=73, lam=500, delta_t=0.05)
    cluster.add_stream("S1")
    cluster.add_stream("S2")
    r1 = cluster.add_replica("r1", "shard-a", ["S1"], pmap)
    r2 = cluster.add_replica("r2", "shard-b", ["S1"], pmap)
    cluster.publish_map(pmap)
    client = cluster.add_client(
        "c1", pmap, KeyspaceWorkload(n_keys=300, value_size=64),
        n_threads=8, timeout=0.5,
    )
    cluster.run(until=1.5)

    split = cluster.orchestrator.split(
        old_map=pmap, split_index=0, moving_group="shard-b",
        moving_replicas=("r2",), new_stream="S2", settle_delay=0.5,
    )
    cluster.run(until=5.0)
    split_map = split.value
    assert split_map.n_partitions == 2
    # Disjoint ownership during the split phase.
    assert not (set(r1.store.keys()) & set(r2.store.keys()))

    merge = cluster.orchestrator.merge(
        old_map=split_map, doomed_index=1, into_index=0,
        absorbing_group="shard-a", settle_delay=0.5,
    )
    cluster.run(until=10.0)
    merged_map = merge.value
    assert merged_map.n_partitions == 1
    cluster.run(until=11.0)
    client.stop_workers()
    cluster.run(until=12.0)

    # r1 now owns everything again; every key either originated in r1
    # or moved back via state transfer.
    assert set(r2.store.keys()) <= set(r1.store.keys()) | set()
    for key in r1.store.keys():
        assert merged_map.owns("r1", key)
    assert client.completed > 200
    # The service stayed available through both transitions: generous
    # bound on total timeout-retries.
    assert client.timeouts < client.completed * 0.2
