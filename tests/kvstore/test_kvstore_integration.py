"""Integration tests: the partitioned key/value store end to end."""

import pytest

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.workload import KeyspaceWorkload, key_name


def single_partition_map(replicas=("r1", "r2"), shared=None):
    return PartitionMap(
        version=0,
        partitions=(Partition(index=0, stream="S1", replicas=tuple(replicas)),),
        shared_stream=shared,
    )


def small_cluster(pmap, lam=500, delta_t=0.05, seed=5):
    cluster = KvCluster(seed=seed, lam=lam, delta_t=delta_t)
    cluster.add_stream("S1")
    return cluster


def test_put_then_get_linearizable():
    pmap = single_partition_map()
    cluster = small_cluster(pmap)
    for name in ("r1", "r2"):
        cluster.add_replica(name, f"g-{name}", ["S1"], pmap)
    cluster.publish_map(pmap)
    workload = KeyspaceWorkload(n_keys=50, value_size=64, put_fraction=0.5)
    client = cluster.add_client("c1", pmap, workload, n_threads=4)
    cluster.run(until=2.0)
    assert client.completed > 50
    assert client.timeouts == 0
    # Both replicas applied the same writes.
    r1, r2 = cluster.replicas["r1"], cluster.replicas["r2"]
    assert list(r1.store.keys()) == list(r2.store.keys())


def test_client_latency_recorded():
    pmap = single_partition_map()
    cluster = small_cluster(pmap)
    cluster.add_replica("r1", "g1", ["S1"], pmap)
    cluster.add_replica("r2", "g2", ["S1"], pmap)
    client = cluster.add_client(
        "c1", pmap, KeyspaceWorkload(n_keys=10, value_size=64), n_threads=2
    )
    cluster.run(until=1.0)
    assert len(client.latency) == client.completed
    assert client.latency.percentile(95) < 0.1


def test_replica_cpu_capacity_limits_throughput():
    pmap = single_partition_map(replicas=("r1",))
    cluster = small_cluster(pmap)
    cluster.add_replica("r1", "g1", ["S1"], pmap, cpu_rate=100.0)
    client = cluster.add_client(
        "c1", pmap, KeyspaceWorkload(n_keys=100, value_size=64), n_threads=20
    )
    cluster.run(until=3.0)
    rate = client.ops.rate_between(1.0, 3.0)
    assert 60 <= rate <= 130   # saturates near the 100 ops/s CPU


def test_getrange_spans_partitions_consistently():
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
        shared_stream="SHARED",
    )
    cluster = KvCluster(seed=9, lam=500, delta_t=0.05)
    for stream in ("S1", "S2", "SHARED"):
        cluster.add_stream(stream)
    cluster.add_replica("r1", "g1", ["S1", "SHARED"], pmap)
    cluster.add_replica("r2", "g2", ["S2", "SHARED"], pmap)
    cluster.publish_map(pmap)
    # Seed some keys, then issue ranges.
    seed_workload = KeyspaceWorkload(n_keys=30, value_size=64, put_fraction=1.0)
    client = cluster.add_client("seeder", pmap, seed_workload, n_threads=5)
    cluster.run(until=2.0)
    client.stop_workers()

    range_client = cluster.add_client(
        "ranger",
        pmap,
        KeyspaceWorkload(n_keys=30, put_fraction=0.0, range_fraction=1.0,
                         range_span=30),
        n_threads=1,
    )
    cluster.run(until=4.0)
    assert range_client.completed > 0
    assert range_client.timeouts == 0


def test_split_repartitions_without_interruption():
    """The Fig. 4 scenario at test scale."""
    pmap = single_partition_map(replicas=("r1", "r2"))
    cluster = small_cluster(pmap)
    cluster.add_stream("S2")
    r1 = cluster.add_replica("r1", "shard-a", ["S1"], pmap)
    r2 = cluster.add_replica("r2", "shard-b", ["S1"], pmap)
    cluster.publish_map(pmap)
    workload = KeyspaceWorkload(n_keys=200, value_size=64)
    client = cluster.add_client("c1", pmap, workload, n_threads=10, timeout=0.5)
    cluster.run(until=1.0)

    split = cluster.orchestrator.split(
        old_map=pmap,
        split_index=0,
        moving_group="shard-b",
        moving_replicas=("r2",),
        new_stream="S2",
        settle_delay=0.5,
    )
    cluster.run(until=6.0)
    assert split.triggered
    new_map = split.value
    assert new_map.n_partitions == 2

    # Subscriptions converged: r1 only on S1, r2 only on S2.
    assert r1.subscriptions == ("S1",)
    assert r2.subscriptions == ("S2",)
    # Each replica now holds only the keys its shard owns.
    for key in r1.store.keys():
        assert new_map.owns("r1", key)
    for key in r2.store.keys():
        assert new_map.owns("r2", key)
    # Traffic continued after the split.
    post_rate = client.ops.rate_between(5.0, 6.0)
    assert post_rate > 0
    # Clients saw at most a brief timeout-driven gap.
    assert client.timeouts < client.completed


def test_merge_transfers_state_back():
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
    )
    cluster = KvCluster(seed=11, lam=500, delta_t=0.05)
    cluster.add_stream("S1")
    cluster.add_stream("S2")
    r1 = cluster.add_replica("r1", "shard-a", ["S1"], pmap)
    r2 = cluster.add_replica("r2", "shard-b", ["S2"], pmap)
    cluster.publish_map(pmap)
    client = cluster.add_client(
        "c1", pmap, KeyspaceWorkload(n_keys=100, value_size=64), n_threads=5,
        timeout=0.5,
    )
    cluster.run(until=1.5)
    client.stop_workers()
    keys_before = set(r1.store.keys()) | set(r2.store.keys())

    merge = cluster.orchestrator.merge(
        old_map=pmap,
        doomed_index=1,
        into_index=0,
        absorbing_group="shard-a",
        settle_delay=0.5,
    )
    cluster.run(until=6.0)
    assert merge.triggered
    new_map = merge.value
    assert new_map.n_partitions == 1
    # r1 absorbed everything, including r2's rows via state transfer.
    assert set(r1.store.keys()) == keys_before
    # The doomed stream was unsubscribed once the merge completed.
    assert r1.subscriptions == ("S1",)


def test_misdirected_commands_are_discarded_and_retried():
    pmap = single_partition_map(replicas=("r1",))
    cluster = small_cluster(pmap)
    cluster.add_replica("r1", "g1", ["S1"], pmap)
    # Client believes in a stale 2-partition map routing some keys to a
    # stream whose replica does not own them.
    cluster.add_stream("S2")
    cluster.add_replica("r2", "g2", ["S2"], pmap)  # owns nothing extra
    stale_map = PartitionMap(
        version=99,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
    )
    client = cluster.add_client(
        "c1",
        stale_map,
        KeyspaceWorkload(n_keys=40, value_size=64),
        n_threads=4,
        timeout=0.3,
    )
    # Publish the true map so the watch corrects the client.
    cluster.publish_map(pmap)
    cluster.run(until=3.0)
    # After the watch update all commands route to S1 and complete.
    assert client.completed > 0
    assert client.partition_map.version == pmap.version
