"""Unit tests for hash partitioning and the partition map."""

import pytest

from repro.kvstore import Partition, PartitionMap, partition_index_of
from repro.workload import key_name


def two_partition_map():
    return PartitionMap(
        version=1,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
        shared_stream="SHARED",
    )


def test_partition_index_is_deterministic():
    assert partition_index_of("abc", 4) == partition_index_of("abc", 4)


def test_partition_index_range():
    for i in range(100):
        assert 0 <= partition_index_of(key_name(i), 3) < 3


def test_split_moves_roughly_half_the_keys():
    moved = sum(
        1
        for i in range(10_000)
        if partition_index_of(key_name(i), 1) != partition_index_of(key_name(i), 2)
    )
    assert 4_000 < moved < 6_000


def test_partition_of_routes_by_hash():
    pmap = two_partition_map()
    for i in range(50):
        key = key_name(i)
        expected = partition_index_of(key, 2)
        assert pmap.partition_of(key).index == expected


def test_owns_respects_replica_membership():
    pmap = two_partition_map()
    key0 = next(k for k in (key_name(i) for i in range(100))
                if partition_index_of(k, 2) == 0)
    assert pmap.owns("r1", key0)
    assert not pmap.owns("r2", key0)


def test_partition_of_replica():
    pmap = two_partition_map()
    assert pmap.partition_of_replica("r2").index == 1
    assert pmap.partition_of_replica("nobody") is None


def test_map_validates_partition_indices():
    with pytest.raises(ValueError):
        PartitionMap(
            version=0,
            partitions=(Partition(index=1, stream="S", replicas=("r",)),),
        )


def test_zero_partitions_rejected_by_hash():
    with pytest.raises(ValueError):
        partition_index_of("k", 0)
