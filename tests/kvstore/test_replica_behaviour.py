"""Unit-level tests of KvReplica semantics, driven without a network
round trip where possible."""

import pytest

from repro.harness.cluster import KvCluster
from repro.kvstore import (
    DeleteCmd,
    GetCmd,
    MapChangeCmd,
    Partition,
    PartitionMap,
    PutCmd,
    RangeCmd,
)
from repro.kvstore.commands import SignalMsg, StateTransferRequest
from repro.paxos.types import AppValue
from repro.workload import key_name


def one_partition_map(replicas=("r1",)):
    return PartitionMap(
        version=0,
        partitions=(Partition(index=0, stream="S1", replicas=tuple(replicas)),),
    )


def make_replica(pmap, name="r1", group="g1", streams=("S1",)):
    cluster = KvCluster(seed=51, lam=500, delta_t=0.05)
    for stream in {p.stream for p in pmap.partitions} | set(streams):
        if stream not in cluster.directory:
            cluster.add_stream(stream)
    replica = cluster.add_replica(name, group, list(streams), pmap)
    # Targets the replica replies/signals to in these unit tests.
    for host in ("c", "r2", "r9", "other"):
        cluster.network.add_host(host)
    return cluster, replica


def apply_cmd(replica, command, stream="S1"):
    replica.apply(AppValue(payload=command, size=64), stream, 0)


def test_put_then_get_through_apply():
    pmap = one_partition_map()
    cluster, replica = make_replica(pmap)
    key = key_name(1)
    apply_cmd(replica, PutCmd(key=key, value="v", value_size=1, client="c"))
    apply_cmd(replica, GetCmd(key=key, client="c"))
    cluster.run(until=0.1)
    assert replica.store.get(key) == "v"
    assert replica.executed == 2


def test_delete_removes_key_and_reports_existence():
    pmap = one_partition_map()
    cluster, replica = make_replica(pmap)
    key = key_name(2)
    apply_cmd(replica, PutCmd(key=key, value="v", value_size=1, client="c"))
    apply_cmd(replica, DeleteCmd(key=key, client="c"))
    assert key not in replica.store
    # Deleting again is executed (idempotent at the store level).
    apply_cmd(replica, DeleteCmd(key=key, client="c"))
    assert replica.executed == 3


def test_misdirected_delete_discarded():
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("other",)),
        ),
    )
    cluster, replica = make_replica(pmap)
    foreign = next(
        key_name(i) for i in range(100) if pmap.partition_of(key_name(i)).index == 1
    )
    apply_cmd(replica, DeleteCmd(key=foreign, client="c"))
    assert replica.discarded_misdirected == 1


def test_misdirected_command_discarded_silently():
    # r1 owns partition 0 of a 2-partition map; keys hashing to 1 are
    # not its business even if they arrive on its stream.
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("other",)),
        ),
    )
    cluster, replica = make_replica(pmap)
    foreign = next(
        key_name(i) for i in range(100) if pmap.partition_of(key_name(i)).index == 1
    )
    apply_cmd(replica, PutCmd(key=foreign, value="v", value_size=1, client="c"))
    assert replica.discarded_misdirected == 1
    assert replica.executed == 0
    assert foreign not in replica.store


def test_map_change_is_versioned_idempotent():
    pmap = one_partition_map()
    cluster, replica = make_replica(pmap)
    newer = PartitionMap(
        version=2,
        partitions=(Partition(index=0, stream="S1", replicas=("r1",)),),
    )
    apply_cmd(replica, MapChangeCmd(new_map=newer))
    assert replica.partition_map.version == 2
    stale = PartitionMap(
        version=1,
        partitions=(Partition(index=0, stream="S1", replicas=("somebody",)),),
    )
    apply_cmd(replica, MapChangeCmd(new_map=stale))
    assert replica.partition_map.version == 2   # stale copy ignored


def test_map_change_hands_off_dropped_rows():
    pmap = one_partition_map()
    cluster, replica = make_replica(pmap)
    for i in range(20):
        apply_cmd(replica, PutCmd(key=key_name(i), value=i, value_size=1, client="c"))
    # New map: two partitions; r1 keeps only partition 0's keys.
    new_map = PartitionMap(
        version=1,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
    )
    before = len(replica.store)
    apply_cmd(replica, MapChangeCmd(new_map=new_map))
    handed_off = replica._handoff[1]
    assert len(replica.store) + len(handed_off) == before
    for key, _value in handed_off:
        assert new_map.partition_of(key).index == 1


def test_state_transfer_request_waits_for_map_install():
    pmap = one_partition_map()
    cluster, replica = make_replica(pmap)
    # A transfer request for a map we have not installed yet queues up.
    replica.on_state_transfer_request(
        StateTransferRequest(version=5, requester="r9"), "r9"
    )
    assert replica._waiting_transfers == {5: ["r9"]}


def test_range_on_single_partition_replies_without_signals():
    pmap = one_partition_map()
    cluster, replica = make_replica(pmap)
    for i in range(10):
        apply_cmd(replica, PutCmd(key=key_name(i), value=i, value_size=1, client="c"))
    apply_cmd(replica, RangeCmd(start=key_name(0), end=key_name(5), client="c"))
    assert not replica._pending_ranges   # replied immediately


def test_range_waits_for_other_partitions_signal():
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
        shared_stream="SH",
    )
    cluster, replica = make_replica(pmap, streams=("S1",))
    command = RangeCmd(start=key_name(0), end=key_name(5), client="c")
    apply_cmd(replica, command)
    assert command.cmd_id in replica._pending_ranges
    replica.on_signal_msg(
        SignalMsg(cmd_id=command.cmd_id, partition=1, replica="r2"), "r2"
    )
    assert command.cmd_id not in replica._pending_ranges


def test_early_signal_before_local_delivery_is_buffered():
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
        shared_stream="SH",
    )
    cluster, replica = make_replica(pmap, streams=("S1",))
    command = RangeCmd(start=key_name(0), end=key_name(5), client="c")
    replica.on_signal_msg(
        SignalMsg(cmd_id=command.cmd_id, partition=1, replica="r2"), "r2"
    )
    apply_cmd(replica, command)
    # The buffered signal satisfied the wait at delivery time.
    assert command.cmd_id not in replica._pending_ranges
