"""Unit tests for the in-memory sorted store."""

import pytest

from repro.kvstore import InMemoryStore


def test_put_get_roundtrip():
    store = InMemoryStore()
    store.put("a", 1)
    assert store.get("a") == 1
    assert store.get("missing") is None


def test_put_overwrites():
    store = InMemoryStore()
    store.put("a", 1)
    store.put("a", 2)
    assert store.get("a") == 2
    assert len(store) == 1


def test_delete_removes_key():
    store = InMemoryStore()
    store.put("a", 1)
    assert store.delete("a") is True
    assert store.delete("a") is False
    assert "a" not in store
    assert list(store.keys()) == []


def test_get_range_half_open_sorted():
    store = InMemoryStore()
    for key in ("d", "a", "c", "b", "e"):
        store.put(key, key.upper())
    assert store.get_range("b", "e") == [("b", "B"), ("c", "C"), ("d", "D")]


def test_get_range_empty_interval_raises():
    store = InMemoryStore()
    with pytest.raises(ValueError):
        store.get_range("z", "a")


def test_get_range_no_matches():
    store = InMemoryStore()
    store.put("a", 1)
    assert store.get_range("b", "c") == []


def test_retain_only_drops_and_counts():
    store = InMemoryStore()
    for i in range(10):
        store.put(f"k{i}", i)
    dropped = store.retain_only(lambda key: int(key[1:]) % 2 == 0)
    assert dropped == 5
    assert list(store.keys()) == ["k0", "k2", "k4", "k6", "k8"]


def test_keys_iterates_sorted():
    store = InMemoryStore()
    for key in ("z", "m", "a"):
        store.put(key, 0)
    assert list(store.keys()) == ["a", "m", "z"]
