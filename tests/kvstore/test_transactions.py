"""One-shot multi-partition transactions: atomicity & linearizability."""

import pytest

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.workload import KeyspaceWorkload, key_name


def two_shard_world(seed=91):
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
        shared_stream="SH",
    )
    cluster = KvCluster(seed=seed, lam=1000, delta_t=0.02)
    for stream in ("S1", "S2", "SH"):
        cluster.add_stream(stream)
    r1 = cluster.add_replica("r1", "g1", ["S1", "SH"], pmap)
    r2 = cluster.add_replica("r2", "g2", ["S2", "SH"], pmap)
    cluster.publish_map(pmap)
    client = cluster.add_client(
        "c1", pmap, KeyspaceWorkload(n_keys=100), n_threads=0, timeout=1.0
    )
    return cluster, pmap, r1, r2, client


def keys_per_partition(pmap, count=4):
    """First ``count`` keyspace keys owned by each partition."""
    buckets = {p.index: [] for p in pmap.partitions}
    i = 0
    while any(len(b) < count for b in buckets.values()):
        key = key_name(i)
        bucket = buckets[pmap.partition_of(key).index]
        if len(bucket) < count:
            bucket.append(key)
        i += 1
    return buckets


def run_one(cluster, client, spec, until):
    proc = cluster.env.process(client.execute(spec))
    cluster.run(until=until)
    assert proc.triggered, "command did not complete"
    return proc.value


def test_single_partition_txn_routes_to_partition_stream():
    cluster, pmap, r1, r2, client = two_shard_world()
    buckets = keys_per_partition(pmap)
    k0, k1 = buckets[0][0], buckets[0][1]
    results = run_one(
        cluster, client,
        ("txn", ((k0, "put", "x"), (k1, "put", "y"), (k0, "read", None))),
        until=1.0,
    )
    assert len(results) == 1          # one partition replied
    assert results[0][k0] == "x"
    assert r1.store.get(k1) == "y"
    assert k0 not in r2.store


def test_cross_partition_txn_applies_on_both_shards():
    cluster, pmap, r1, r2, client = two_shard_world()
    buckets = keys_per_partition(pmap)
    a, b = buckets[0][0], buckets[1][0]
    results = run_one(
        cluster, client,
        ("txn", ((a, "put", 1), (b, "put", 2), (a, "read", None), (b, "read", None))),
        until=1.0,
    )
    assert len(results) == 2          # both partitions replied
    merged = {}
    for partial in results:
        merged.update(partial)
    assert merged == {a: 1, b: 2}
    assert r1.store.get(a) == 1
    assert r2.store.get(b) == 2


def test_add_op_increments_numerically():
    cluster, pmap, r1, r2, client = two_shard_world()
    buckets = keys_per_partition(pmap)
    key = buckets[0][0]
    run_one(cluster, client, ("txn", ((key, "add", 10),)), until=1.0)
    results = run_one(cluster, client, ("txn", ((key, "add", -3),)), until=2.0)
    assert results[0][key] == 7
    assert r1.store.get(key) == 7


def test_concurrent_transfers_preserve_total_balance():
    """The bank invariant: transfers between accounts on different
    shards never create or destroy money."""
    cluster, pmap, r1, r2, client = two_shard_world()
    buckets = keys_per_partition(pmap, count=3)
    accounts = buckets[0][:3] + buckets[1][:3]
    env = cluster.env

    # Seed every account with 100.
    for account in accounts:
        env.process(client.execute(("txn", ((account, "put", 100),))))
    cluster.run(until=1.0)

    rng = cluster.rng.stream("transfers")

    def transferer(n):
        for _ in range(n):
            src, dst = rng.sample(accounts, 2)
            amount = rng.randrange(1, 20)
            yield from client.execute(
                ("txn", ((src, "add", -amount), (dst, "add", amount)))
            )

    for _ in range(4):
        env.process(transferer(15))
    cluster.run(until=8.0)

    # Audit with a consistent cross-shard read.
    read_ops = tuple((account, "read", None) for account in accounts)
    results = run_one(cluster, client, ("txn", read_ops), until=9.0)
    balances = {}
    for partial in results:
        balances.update(partial)
    assert sum(balances.values()) == 100 * len(accounts)
    # Both replicas' stores agree with the audited snapshot.
    for account in accounts:
        owner = r1 if pmap.partition_of(account).index == 0 else r2
        assert owner.store.get(account) == balances[account]


def test_consistent_audit_during_transfers():
    """Audits interleaved with transfers always see a conserved total
    (linearizable cross-shard reads)."""
    cluster, pmap, r1, r2, client = two_shard_world(seed=93)
    buckets = keys_per_partition(pmap, count=2)
    accounts = buckets[0][:2] + buckets[1][:2]
    env = cluster.env
    for account in accounts:
        env.process(client.execute(("txn", ((account, "put", 50),))))
    cluster.run(until=1.0)

    rng = cluster.rng.stream("t2")
    stop = {"flag": False}

    def churn():
        while not stop["flag"]:
            src, dst = rng.sample(accounts, 2)
            yield from client.execute(
                ("txn", ((src, "add", -5), (dst, "add", 5)))
            )

    env.process(churn())
    read_ops = tuple((account, "read", None) for account in accounts)
    totals = []

    def auditor():
        for _ in range(10):
            results = yield from client.execute(("txn", read_ops))
            merged = {}
            for partial in results:
                merged.update(partial)
            totals.append(sum(merged.values()))
        stop["flag"] = True

    env.process(auditor())
    cluster.run(until=10.0)
    assert len(totals) == 10
    assert all(total == 200 for total in totals), totals
