"""Unit tests for the shape-analysis helpers."""

import pytest

from repro.metrics import (
    dip_and_recovery,
    flat_through,
    is_monotonic_increasing,
    relative_error,
    step_ratios,
)


def test_relative_error():
    assert relative_error(110, 100) == pytest.approx(0.1)
    assert relative_error(90, 100) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        relative_error(1, 0)


def test_monotonic_with_tolerance():
    assert is_monotonic_increasing([1, 2, 3])
    assert not is_monotonic_increasing([1, 3, 2])
    assert is_monotonic_increasing([100, 99, 150], tolerance=0.02)


def test_step_ratios():
    assert step_ratios([100, 200, 300]) == [1.0, 2.0, 3.0]
    with pytest.raises(ValueError):
        step_ratios([])
    with pytest.raises(ValueError):
        step_ratios([0, 1])


def test_dip_and_recovery_detects_stall():
    series = [(t, 100.0) for t in range(10)]
    series[5] = (5, 10.0)
    series[6] = (6, 50.0)
    depth, recovery = dip_and_recovery(series, event_time=4, window=5, baseline=100)
    assert depth == pytest.approx(0.1)
    assert recovery == pytest.approx(3.0)  # back at >=90 by t=7


def test_dip_and_recovery_no_dip():
    series = [(t, 100.0) for t in range(10)]
    depth, recovery = dip_and_recovery(series, event_time=2, window=5, baseline=100)
    assert depth == pytest.approx(1.0)
    assert recovery == 0.0


def test_dip_and_recovery_validates():
    with pytest.raises(ValueError):
        dip_and_recovery([], 0, 1, 100)
    with pytest.raises(ValueError):
        dip_and_recovery([(0, 1)], 0, 1, 0)


def test_flat_through():
    series = [(t, 100.0) for t in range(10)]
    assert flat_through(series, 0, 9, baseline=100)
    series[4] = (4, 70.0)
    assert not flat_through(series, 0, 9, baseline=100)
    assert flat_through(series, 5, 9, baseline=100)
