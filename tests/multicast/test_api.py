"""Unit tests for the MulticastClient API surface."""

import pytest

from repro.multicast import MulticastClient, StreamDeployment
from repro.paxos import StreamConfig
from repro.paxos.types import AppValue
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_world():
    env = Environment()
    net = Network(env, rng=RngRegistry(101), default_link=LinkSpec(latency=0.001))
    directory = {}
    for name in ("S1", "S2"):
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=200,
            delta_t=0.05,
        )
        directory[name] = StreamDeployment(env, net, config)
        directory[name].start()
    client = MulticastClient(env, net, "client", directory)
    return env, net, directory, client


def test_multicast_returns_trackable_value():
    env, net, directory, client = make_world()
    value = client.multicast("S1", payload="x", size=512)
    assert isinstance(value, AppValue)
    assert value.sender == "client"
    assert value.size == 512


def test_multicast_unknown_stream_raises():
    env, net, directory, client = make_world()
    with pytest.raises(KeyError, match="S9"):
        client.multicast("S9", payload="x")


def test_subscribe_requires_distinct_streams():
    env, net, directory, client = make_world()
    with pytest.raises(ValueError):
        client.subscribe_msg("G", new_stream="S1", via_stream="S1")


def test_subscribe_sends_same_request_id_to_both_streams():
    env, net, directory, client = make_world()
    request_id = client.subscribe_msg("G", new_stream="S2", via_stream="S1")
    env.run(until=0.5)
    found = []
    for name in ("S1", "S2"):
        acceptor = directory[name].acceptors[0]
        for instance in acceptor.core.log.decided_instances():
            batch = acceptor.core.log.decided_value(instance)
            for token in batch.tokens:
                if getattr(token, "request_id", None) == request_id:
                    found.append(name)
    assert sorted(found) == ["S1", "S2"]


def test_unsubscribe_defaults_to_the_stream_itself():
    env, net, directory, client = make_world()
    request_id = client.unsubscribe_msg("G", "S2")
    env.run(until=0.5)
    acceptor = directory["S2"].acceptors[0]
    ids = [
        getattr(token, "request_id", None)
        for instance in acceptor.core.log.decided_instances()
        for token in acceptor.core.log.decided_value(instance).tokens
    ]
    assert request_id in ids


def test_prepare_is_ordered_in_the_via_stream_only():
    env, net, directory, client = make_world()
    request_id = client.prepare_msg("G", new_stream="S2", via_stream="S1")
    env.run(until=0.5)

    def ids_in(stream):
        acceptor = directory[stream].acceptors[0]
        return [
            getattr(token, "request_id", None)
            for instance in acceptor.core.log.decided_instances()
            for token in acceptor.core.log.decided_value(instance).tokens
        ]

    assert request_id in ids_in("S1")
    assert request_id not in ids_in("S2")
