"""Replica crash/recovery: checkpoint, replay, re-learned subscriptions."""

import pytest

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.storage import CheckpointStore
from repro.workload import KeyspaceWorkload


def test_checkpoint_rejected_during_pending_subscription(make_cluster):
    cluster = make_cluster(["S1", "S2"], seed=31)
    replica = cluster.add_replica("r1", "G", ["S1"])
    replica.merger._pending = type("P", (), {"stream": "S2"})()
    with pytest.raises(RuntimeError, match="during a subscription"):
        replica.make_checkpoint()


def test_recovery_resumes_without_duplicate_delivery(make_cluster):
    cluster = make_cluster(["S1", "S2"], seed=31)
    replica = cluster.add_replica("r1", "G", ["S1"])
    env, client = cluster.env, cluster.client

    def phase1():
        for i in range(20):
            client.multicast("S1", payload=("pre", i))
            yield env.timeout(0.01)

    env.process(phase1())
    cluster.run(until=0.5)
    assert len(cluster.delivered["r1"]) == 20

    checkpoints = CheckpointStore()
    checkpoints.save(0, replica.make_checkpoint())
    replica.crash()

    # 10 messages ordered while the replica is down.
    def phase2():
        for i in range(10):
            client.multicast("S1", payload=("down", i))
            yield env.timeout(0.01)

    env.process(phase2())
    cluster.run(until=1.0)
    assert len(cluster.delivered["r1"]) == 20   # crashed: nothing delivered

    replica.recover_from_checkpoint(checkpoints.latest().state)
    cluster.run(until=2.0)
    # Everything exactly once, in order: the 20 pre-crash (not
    # re-delivered) plus the 10 ordered during the outage.
    assert cluster.payloads("r1") == [("pre", i) for i in range(20)] + [
        ("down", i) for i in range(10)
    ]


def test_recovery_relearns_subscription_changes(make_cluster):
    """Subscribe/unsubscribe ordered during the outage are replayed:
    the recovering replica converges to the same Σ as a live peer."""
    cluster = make_cluster(["S1", "S2"], seed=31)
    r1 = cluster.add_replica("r1", "G", ["S1"])
    r2 = cluster.add_replica("r2", "G", ["S1"])
    env, client = cluster.env, cluster.client

    def load():
        for i in range(100):
            client.multicast("S1", payload=("s1", i))
            yield env.timeout(0.01)

    env.process(load())
    cluster.run(until=0.3)

    checkpoints = CheckpointStore()
    checkpoints.save(0, r1.make_checkpoint())
    r1.crash()

    # While r1 is down, the group subscribes to S2.
    cluster.run(until=0.4)
    client.subscribe_msg("G", new_stream="S2", via_stream="S1")

    def s2_load():
        yield env.timeout(0.3)
        for i in range(10):
            client.multicast("S2", payload=("s2", i))
            yield env.timeout(0.01)

    env.process(s2_load())
    cluster.run(until=1.2)
    assert r2.subscriptions == ("S1", "S2")

    r1.recover_from_checkpoint(checkpoints.latest().state)
    cluster.run(until=3.0)
    # r1 re-learned the subscription from the stream itself.
    assert r1.subscriptions == ("S1", "S2")
    # And both replicas delivered the identical sequence.
    assert cluster.delivered["r1"] == cluster.delivered["r2"]


def test_kv_replica_recovery_preserves_store():
    pmap = PartitionMap(
        version=0,
        partitions=(Partition(index=0, stream="S1", replicas=("r1", "r2")),),
    )
    cluster = KvCluster(seed=33, lam=500, delta_t=0.05)
    cluster.add_stream("S1")
    r1 = cluster.add_replica("r1", "g1", ["S1"], pmap)
    r2 = cluster.add_replica("r2", "g2", ["S1"], pmap)
    cluster.publish_map(pmap)
    client = cluster.add_client(
        "c1", pmap, KeyspaceWorkload(n_keys=100, value_size=64), n_threads=5
    )
    cluster.run(until=1.0)

    checkpoints = CheckpointStore()
    checkpoints.save(0, r1.make_checkpoint())
    r1.crash()
    cluster.run(until=2.0)   # r2 keeps serving alone

    r1.recover_from_checkpoint(checkpoints.latest().state)
    cluster.run(until=3.5)
    # r1 caught up: identical store contents as the live replica.
    assert list(r1.store.keys()) == list(r2.store.keys())
    assert client.completed > 0
