"""Edge cases of the elastic merge beyond the happy paths."""

from repro.multicast.elastic import ElasticMerger
from repro.multicast.stream import TokenLog
from repro.paxos.types import (
    AppValue,
    SkipToken,
    SubscribeMsg,
    UnsubscribeMsg,
)


def value(tag):
    return AppValue(payload=tag)


class Harness:
    def __init__(self, group, initial, all_logs):
        self.delivered = []
        self.released = []
        self.merger = ElasticMerger(
            group=group,
            deliver=lambda v, s, p: self.delivered.append((v.payload, s)),
            stream_provider=lambda name: all_logs[name],
            stream_releaser=self.released.append,
        )
        self.merger.bootstrap({name: all_logs[name] for name in initial})

    @property
    def payloads(self):
        return [v for v, _s in self.delivered]


def test_resubscribe_after_unsubscribe():
    """A group can leave a stream and join it again later."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    r = Harness("G", ["S1", "S2"], logs)

    s1.append(value("a0"))
    s2.append(value("b0"))
    s1.append(UnsubscribeMsg(group="G", stream="S2"))
    s2.append(value("lost"))      # ordered while unsubscribed
    s1.append(value("a1"))
    r.merger.pump()
    assert r.merger.subscriptions == ("S1",)

    # Re-subscribe: a fresh request ordered in both streams.
    sub = SubscribeMsg(group="G", stream="S2")
    s1.append(sub)
    s2.append(sub)
    s1.append(SkipToken(count=10))
    s2.append(SkipToken(count=10))
    r.merger.pump()
    assert r.merger.subscriptions == ("S1", "S2")
    assert "lost" not in r.payloads     # pre-merge-point: discarded
    # A value ordered after the merge point flows again.
    s2.append(value("b1"))
    s1.append(SkipToken(count=5))
    r.merger.pump()
    assert "b1" in r.payloads


def test_unsubscribe_during_alignment_of_another_stream():
    """An unsubscribe consumed while a subscription is aligning."""
    s1, s2, s3 = TokenLog(), TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2, "S3": s3}
    r = Harness("G", ["S1", "S2"], logs)

    sub3 = SubscribeMsg(group="G", stream="S3")
    s1.append(value("a0"))
    s2.append(value("b0"))
    s1.append(sub3)
    # S3's copy is far ahead, forcing a long alignment window.
    s3.append(SkipToken(count=6))
    s3.append(sub3)
    s3.append(value("c0"))
    # During alignment, S1 orders an unsubscribe of S2.
    s2.append(value("b1"))
    s1.append(UnsubscribeMsg(group="G", stream="S2"))
    s1.append(SkipToken(count=20))
    s2.append(SkipToken(count=20))
    r.merger.pump()
    assert r.merger.subscriptions == ("S1", "S3")
    assert "c0" in r.payloads
    assert r.released == ["S2"]


def test_duplicate_prepare_is_harmless():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    provided = []
    r = Harness("G", ["S1"], logs)
    inner = r.merger.stream_provider
    r.merger.stream_provider = lambda name: (provided.append(name), inner(name))[1]
    from repro.paxos.types import PrepareMsg

    s1.append(PrepareMsg(group="G", stream="S2"))
    s1.append(PrepareMsg(group="G", stream="S2"))
    s1.append(value("a"))
    r.merger.pump()
    assert provided == ["S2"]          # second hint was a no-op
    assert r.payloads == ["a"]


def test_subscribe_request_id_seen_in_new_stream_first():
    """The copy in the new stream may be ordered (and recovered) before
    the copy in the subscribed stream is consumed."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    sub = SubscribeMsg(group="G", stream="S2")
    # S2's copy exists in the log before the merger ever looks at it.
    s2.append(value("early"))
    s2.append(sub)
    s2.append(value("b0"))
    r = Harness("G", ["S1"], logs)
    r.merger.pump()
    assert r.merger.subscriptions == ("S1",)
    s1.append(sub)
    s1.append(SkipToken(count=5))
    r.merger.pump()
    assert r.merger.subscriptions == ("S1", "S2")
    assert "early" not in r.payloads
    assert "b0" in r.payloads


def test_positions_reported_to_deliver_are_monotonic_per_stream():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    positions = {"S1": [], "S2": []}
    merger = ElasticMerger(
        group="G",
        deliver=lambda v, s, p: positions[s].append(p),
        stream_provider=lambda name: logs[name],
    )
    merger.bootstrap(logs)
    for i in range(5):
        s1.append(value(f"a{i}"))
        s2.append(SkipToken(count=2))
        s2.append(value(f"b{i}"))
    merger.pump()
    for stream, seen in positions.items():
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)
