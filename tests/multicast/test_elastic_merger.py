"""Unit tests for the Elastic Paxos dMerge (Algorithm 1), driven purely.

The centrepiece is the exact Figure 2 scenario of the paper: two
replication groups cross-subscribe to each other's stream and must
deliver the shared suffix in the same order.
"""

import pytest

from repro.multicast.elastic import ElasticMerger
from repro.multicast.stream import TokenLog
from repro.paxos.types import (
    AppValue,
    PrepareMsg,
    SkipToken,
    SubscribeMsg,
    UnsubscribeMsg,
)


def value(tag):
    return AppValue(payload=tag)


class Harness:
    """One replica's merger over externally writable token logs."""

    def __init__(self, group, initial, all_logs):
        self.delivered = []
        self.released = []
        self.all_logs = all_logs
        self.merger = ElasticMerger(
            group=group,
            deliver=lambda v, s, p: self.delivered.append((v.payload, s, p)),
            stream_provider=lambda name: self.all_logs[name],
            stream_releaser=self.released.append,
        )
        self.merger.bootstrap({name: all_logs[name] for name in initial})

    def pump(self):
        self.merger.pump()

    @property
    def payloads(self):
        return [v for v, _s, _p in self.delivered]


def test_figure2_scenario_acyclic_order():
    """Reproduces Fig. 2 of the paper position-for-position."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}

    sub_g1_s2 = SubscribeMsg(group="G1", stream="S2")
    sub_g2_s1 = SubscribeMsg(group="G2", stream="S1")

    # Positions 0-8: history before the figure's window.
    s1.append(SkipToken(count=9))
    s2.append(SkipToken(count=9))
    # Figure 2 contents, positions 9-14.
    for token in (value("m1"), sub_g1_s2, value("m3"), value("m5"),
                  sub_g2_s1, value("m7")):
        s1.append(token)
    for token in (value("m2"), sub_g1_s2, value("m4"), sub_g2_s1,
                  value("m6"), value("m8")):
        s2.append(token)

    r1 = Harness("G1", ["S1"], logs)
    r2 = Harness("G2", ["S2"], logs)
    r1.pump()
    r2.pump()

    assert r1.payloads == ["m1", "m3", "m4", "m5", "m6", "m7", "m8"]
    assert r2.payloads == ["m2", "m4", "m6", "m7", "m8"]
    # Acyclic delivery: messages delivered by both appear in the same order.
    common = [p for p in r1.payloads if p in set(r2.payloads)]
    assert common == [p for p in r2.payloads if p in set(r1.payloads)]
    assert r1.merger.subscriptions == ("S1", "S2")
    assert r2.merger.subscriptions == ("S1", "S2")


def test_merge_point_is_max_of_positions():
    """The merge point aligns at the max of the two request positions."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    sub = SubscribeMsg(group="G", stream="S2")

    # Request at position 1 in S1 but position 3 in S2.
    s1.append(value("a0"))
    s1.append(sub)
    for i in range(5):
        s1.append(value(f"a{i + 1}"))
    s2.append(value("x"))
    s2.append(value("y"))
    s2.append(value("z"))
    s2.append(sub)
    s2.append(value("b0"))
    s2.append(value("b1"))

    r = Harness("G", ["S1"], logs)
    r.pump()
    # merge_ptr = max(2, 4) = 4: a1, a2 delivered solo from S1;
    # x, y, z discarded; merged from position 4: a3, b0, a4, b1, a5.
    assert r.payloads == ["a0", "a1", "a2", "a3", "b0", "a4", "b1", "a5"]
    assert r.merger.stats.discarded == 3


def test_subscription_blocks_until_request_found_in_new_stream():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    sub = SubscribeMsg(group="G", stream="S2")

    s1.append(sub)
    s1.append(value("a"))
    r = Harness("G", ["S1"], logs)
    r.pump()
    # S2 has not yet ordered the request: nothing may be delivered.
    assert r.payloads == []
    assert r.merger.pending_subscription == "S2"
    s2.append(sub)
    s2.append(value("b"))
    r.pump()
    assert r.payloads == ["a", "b"]
    assert r.merger.pending_subscription is None


def test_other_groups_control_messages_are_ignored():
    s1 = TokenLog()
    logs = {"S1": s1}
    s1.append(value("a"))
    s1.append(SubscribeMsg(group="OTHER", stream="S9"))
    s1.append(UnsubscribeMsg(group="OTHER", stream="S1"))
    s1.append(value("b"))
    r = Harness("G", ["S1"], logs)
    r.pump()
    assert r.payloads == ["a", "b"]
    assert r.merger.subscriptions == ("S1",)


def test_unsubscribe_removes_stream_at_the_order_point():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    r = Harness("G", ["S1", "S2"], logs)

    s1.append(value("a0"))
    s2.append(value("b0"))
    s1.append(UnsubscribeMsg(group="G", stream="S2"))
    s2.append(value("b1"))
    s1.append(value("a1"))
    s1.append(value("a2"))
    r.pump()
    # b1 is at S2 position 1, but the unsubscribe (S1 position 1) is
    # consumed at round 2 before S2's turn returns: b1 never delivered.
    assert r.payloads == ["a0", "b0", "a1", "a2"]
    assert r.merger.subscriptions == ("S1",)
    assert r.released == ["S2"]


def test_unsubscribe_ordered_in_the_removed_stream_itself():
    """Fig. 5 submits the unsubscribe to the original stream."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    r = Harness("G", ["S1", "S2"], logs)
    s1.append(value("a0"))
    s2.append(value("b0"))
    s1.append(UnsubscribeMsg(group="G", stream="S1"))
    s2.append(value("b1"))
    s2.append(value("b2"))
    s1.append(value("never"))
    r.pump()
    assert r.payloads == ["a0", "b0", "b1", "b2"]
    assert r.merger.subscriptions == ("S2",)


def test_unsubscribing_last_stream_is_an_error():
    s1 = TokenLog()
    logs = {"S1": s1}
    r = Harness("G", ["S1"], logs)
    s1.append(UnsubscribeMsg(group="G", stream="S1"))
    with pytest.raises(RuntimeError, match="last stream"):
        r.pump()


def test_duplicate_subscribe_request_is_idempotent():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    sub = SubscribeMsg(group="G", stream="S2")
    s1.append(sub)
    s2.append(sub)
    s2.append(value("b0"))
    s1.append(value("a0"))
    r = Harness("G", ["S1"], logs)
    r.pump()
    assert r.merger.subscriptions == ("S1", "S2")
    # A second subscribe for an already-subscribed stream is a no-op.
    dup = SubscribeMsg(group="G", stream="S2")
    s1.append(dup)
    s1.append(value("a1"))
    s2.append(value("b1"))
    r.pump()
    assert r.merger.subscriptions == ("S1", "S2")
    # Round-robin from the commit point: S1@1=a0, S2@1=b0, S1@2=dup
    # (consumed silently), S2@2=b1, S1@3=a1.
    assert r.payloads == ["a0", "b0", "b1", "a1"]


def test_prepare_msg_attaches_stream_without_subscribing():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    provided = []

    r = Harness("G", ["S1"], logs)
    original_provider = r.merger.stream_provider
    r.merger.stream_provider = lambda name: (provided.append(name), original_provider(name))[1]

    s1.append(PrepareMsg(group="G", stream="S2"))
    s1.append(value("a"))
    r.pump()
    assert provided == ["S2"]
    assert r.merger.subscriptions == ("S1",)
    assert r.payloads == ["a"]


def test_delivery_independent_of_arrival_interleaving():
    """Two replicas of the same group must deliver identically no matter
    how token arrival interleaves across streams (determinism)."""
    sub = SubscribeMsg(group="G", stream="S2")
    s1_tokens = [value("a0"), sub, value("a1"), value("a2"), value("a3")]
    s2_tokens = [value("x"), sub, value("b1"), value("b2"), value("b3")]

    def run(schedule):
        s1, s2 = TokenLog(), TokenLog()
        logs = {"S1": s1, "S2": s2}
        r = Harness("G", ["S1"], logs)
        i1 = i2 = 0
        for which in schedule:
            if which == 1 and i1 < len(s1_tokens):
                s1.append(s1_tokens[i1])
                i1 += 1
            elif which == 2 and i2 < len(s2_tokens):
                s2.append(s2_tokens[i2])
                i2 += 1
            r.pump()
        # Flush any stragglers.
        while i1 < len(s1_tokens):
            s1.append(s1_tokens[i1]); i1 += 1
        while i2 < len(s2_tokens):
            s2.append(s2_tokens[i2]); i2 += 1
        r.pump()
        return r.payloads

    schedules = [
        [1] * 5 + [2] * 5,
        [2] * 5 + [1] * 5,
        [1, 2] * 5,
        [2, 1] * 5,
        [1, 1, 2, 2, 1, 2, 1, 2, 2, 1],
    ]
    results = [run(s) for s in schedules]
    assert all(r == results[0] for r in results), results


def test_deferred_subscription_handled_after_commit():
    s1, s2, s3 = TokenLog(), TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2, "S3": s3}
    sub2 = SubscribeMsg(group="G", stream="S2")
    sub3 = SubscribeMsg(group="G", stream="S3")

    s1.append(sub2)
    s1.append(sub3)   # arrives while the S2 subscription is in flight
    s2.append(sub2)
    s3.append(sub3)
    s1.append(value("a"))
    s2.append(value("b"))
    s3.append(value("c"))   # precedes S3's merge point: will be discarded
    r = Harness("G", ["S1"], logs)
    r.pump()
    # Streams must keep advancing for the second alignment to complete
    # (a live system tops them up with skips).
    for log in (s1, s2, s3):
        log.append(SkipToken(count=10))
    r.pump()
    assert r.merger.subscriptions == ("S1", "S2", "S3")
    assert set(r.payloads) == {"a", "b"}
    # Values ordered after the merge point do get delivered.
    s3.append(value("c2"))
    for log in (s1, s2):
        log.append(SkipToken(count=5))
    r.pump()
    assert "c2" in r.payloads


def test_skip_tokens_keep_round_robin_fair():
    """An idle stream advancing on skips does not throttle a loaded one."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    r = Harness("G", ["S1", "S2"], logs)
    for i in range(100):
        s1.append(value(f"a{i}"))
    s2.append(SkipToken(count=100))
    r.pump()
    assert len(r.payloads) == 100


def test_stats_track_subscriptions():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    sub = SubscribeMsg(group="G", stream="S2")
    s1.append(sub)
    s2.append(value("pre"))
    s2.append(sub)
    s1.append(SkipToken(count=5))   # lets S1 reach the merge point
    r = Harness("G", ["S1"], logs)
    r.pump()
    assert r.merger.stats.subscriptions == 1
    assert r.merger.stats.discarded == 1
    s1.append(UnsubscribeMsg(group="G", stream="S2"))
    s2.append(value("x"))
    s2.append(SkipToken(count=10))   # S2 keeps pace until the unsubscribe
    r.pump()
    assert r.merger.stats.unsubscriptions == 1


class _FakeTracer:
    def __init__(self):
        self.events = []

    def emit(self, kind, ts, **fields):
        self.events.append({"kind": kind, "ts": ts, **fields})


class _FakeEnv:
    """Just enough env for the merger's trace/metrics gates: a tracer,
    no metrics, and a settable clock (``env.now`` mirrors ``now()``)."""

    def __init__(self, tracer):
        self.tracer = tracer
        self.metrics = None
        self.now = 0.0


def test_head_of_line_episode_traced_with_blocking_stream():
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    tracer = _FakeTracer()
    env = _FakeEnv(tracer)
    merger = ElasticMerger(
        group="G",
        deliver=lambda v, s, p: None,
        stream_provider=lambda name: logs[name],
        now=lambda: env.now,
        owner="G/r1",
        env=env,
    )
    merger.bootstrap(logs)
    s1.append(value("a"))
    s2.append(value("b"))
    merger.pump()               # delivers a, b; turn back on S1: blocked
    env.now = 1.0
    merger.pump()               # still blocked on S1 -- no episode yet
    hol = [e for e in tracer.events if e["kind"] == "merge.head_of_line"]
    assert hol == []
    env.now = 2.5
    s1.append(value("c"))
    merger.pump()               # unblocked: episode emitted
    (episode,) = [
        e for e in tracer.events if e["kind"] == "merge.head_of_line"
    ]
    assert episode["stream"] == "S1"
    assert episode["replica"] == "G/r1"
    assert episode["group"] == "G"
    # Blocked since the first empty peek at t=0 (the pump that
    # delivered a,b ended with the turn stuck on S1), freed at t=2.5.
    assert episode["waited"] == pytest.approx(2.5)


def test_no_head_of_line_tracking_without_env():
    s1 = TokenLog()
    merger = ElasticMerger(
        group="G",
        deliver=lambda v, s, p: None,
        stream_provider=lambda name: s1,
    )
    merger.bootstrap({"S1": s1})
    merger.pump()               # blocked immediately
    assert merger._blocked_since is None   # gate off: nothing tracked
