"""Integration tests: MulticastReplica + MulticastClient over the network.

These exercise the full paper stack: clients propose over the network,
streams order via ring Paxos, replicas merge with the elastic dMerge,
and subscriptions change while traffic flows.
"""

import pytest

from repro.multicast import MulticastClient, MulticastReplica, StreamDeployment
from repro.paxos import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_world(stream_names, lam=500, delta_t=0.05, seed=7):
    env = Environment()
    net = Network(env, rng=RngRegistry(seed), default_link=LinkSpec(latency=0.001))
    directory = {}
    for name in stream_names:
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=lam,
            delta_t=delta_t,
        )
        directory[name] = StreamDeployment(env, net, config)
        directory[name].start()
    return env, net, directory


def make_replica(env, net, name, group, directory, streams):
    delivered = []
    replica = MulticastReplica(
        env,
        net,
        name,
        group,
        directory,
        on_deliver=lambda v, s, p: delivered.append((v.payload, s)),
    )
    replica.bootstrap(streams)
    return replica, delivered


def test_multicast_delivers_to_subscribed_group():
    env, net, directory = make_world(["S1"])
    replica, delivered = make_replica(env, net, "r1", "G1", directory, ["S1"])
    client = MulticastClient(env, net, "client", directory)
    for i in range(10):
        client.multicast("S1", payload=i)
    env.run(until=1.0)
    assert [p for p, _s in delivered] == list(range(10))


def test_two_replicas_same_group_agree():
    env, net, directory = make_world(["S1", "S2"])
    r1, d1 = make_replica(env, net, "r1", "G1", directory, ["S1", "S2"])
    r2, d2 = make_replica(env, net, "r2", "G1", directory, ["S1", "S2"])
    client = MulticastClient(env, net, "client", directory)

    def load():
        for i in range(30):
            client.multicast("S1" if i % 2 else "S2", payload=i)
            yield env.timeout(0.002)

    env.process(load())
    env.run(until=2.0)
    assert len(d1) == 30
    assert d1 == d2


def test_dynamic_subscribe_while_under_load():
    env, net, directory = make_world(["S1", "S2"])
    replica, delivered = make_replica(env, net, "r1", "G1", directory, ["S1"])
    client = MulticastClient(env, net, "client", directory)

    sent_s2 = []

    def load():
        for i in range(100):
            client.multicast("S1", payload=("s1", i))
            yield env.timeout(0.005)

    def subscriber():
        yield env.timeout(0.2)
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")
        yield env.timeout(0.2)
        for i in range(20):
            client.multicast("S2", payload=("s2", i))
            sent_s2.append(i)
            yield env.timeout(0.005)

    env.process(load())
    env.process(subscriber())
    env.run(until=2.0)
    assert replica.subscriptions == ("S1", "S2")
    s1_payloads = [p for p, s in delivered if s == "S1"]
    s2_payloads = [p for p, s in delivered if s == "S2"]
    assert len(s1_payloads) == 100          # nothing from S1 is lost
    assert [i for _tag, i in s2_payloads] == sent_s2  # post-merge-point S2 all arrive


def test_dynamic_subscribe_two_replicas_identical_order():
    env, net, directory = make_world(["S1", "S2"])
    r1, d1 = make_replica(env, net, "r1", "G1", directory, ["S1"])
    r2, d2 = make_replica(env, net, "r2", "G1", directory, ["S1"])
    client = MulticastClient(env, net, "client", directory)

    def load():
        for i in range(150):
            client.multicast("S1", payload=("s1", i))
            client.multicast("S2", payload=("s2", i))
            yield env.timeout(0.004)

    def subscriber():
        yield env.timeout(0.25)
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")

    env.process(load())
    env.process(subscriber())
    env.run(until=3.0)
    assert r1.subscriptions == ("S1", "S2")
    assert r2.subscriptions == ("S1", "S2")
    assert d1 == d2
    assert len(d1) > 150  # all of S1 plus the post-merge-point part of S2


def test_unsubscribe_stops_delivery_from_stream():
    env, net, directory = make_world(["S1", "S2"])
    replica, delivered = make_replica(env, net, "r1", "G1", directory, ["S1", "S2"])
    client = MulticastClient(env, net, "client", directory)

    def scenario():
        for i in range(10):
            client.multicast("S2", payload=("pre", i))
            yield env.timeout(0.005)
        yield env.timeout(0.2)
        client.unsubscribe_msg("G1", "S2")
        yield env.timeout(0.2)
        for i in range(10):
            client.multicast("S2", payload=("post", i))
            yield env.timeout(0.005)

    env.process(scenario())
    env.run(until=2.0)
    assert replica.subscriptions == ("S1",)
    tags = [p[0] for p, s in delivered if s == "S2"]
    assert tags == ["pre"] * 10
    # The learner task for S2 was stopped and deregistered.
    assert "S2" not in replica.learners


def test_prepare_msg_enables_stall_free_subscription():
    env, net, directory = make_world(["S1", "S2"])
    replica, delivered = make_replica(env, net, "r1", "G1", directory, ["S1"])
    client = MulticastClient(env, net, "client", directory)

    def scenario():
        yield env.timeout(0.5)   # S2 accumulates history (skips)
        client.prepare_msg("G1", new_stream="S2", via_stream="S1")
        yield env.timeout(0.3)   # background recovery completes
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")

    env.process(scenario())

    def load():
        for i in range(300):
            client.multicast("S1", payload=i)
            yield env.timeout(0.004)

    env.process(load())
    env.run(until=2.0)
    assert replica.subscriptions == ("S1", "S2")
    assert len([p for p, s in delivered if s == "S1"]) == 300


def test_reconfiguration_stream_replacement():
    """Fig. 5's scheme: subscribe to S2, immediately unsubscribe S1."""
    env, net, directory = make_world(["S1", "S2"])
    replica, delivered = make_replica(env, net, "r1", "G1", directory, ["S1"])
    client = MulticastClient(env, net, "client", directory)

    def scenario():
        yield env.timeout(0.3)
        client.prepare_msg("G1", new_stream="S2", via_stream="S1")
        yield env.timeout(0.2)
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")
        client.unsubscribe_msg("G1", "S1", via_stream="S1")
        yield env.timeout(0.3)
        for i in range(10):
            client.multicast("S2", payload=("new", i))
            yield env.timeout(0.005)

    env.process(scenario())
    env.run(until=2.0)
    assert replica.subscriptions == ("S2",)
    new_payloads = [p for p, s in delivered if s == "S2"]
    assert [i for _tag, i in new_payloads] == list(range(10))
