"""Integration tests: MulticastReplica + MulticastClient over the network.

These exercise the full paper stack: clients propose over the network,
streams order via ring Paxos, replicas merge with the elastic dMerge,
and subscriptions change while traffic flows.  Cluster construction
comes from the shared ``make_cluster`` fixture (tests/conftest.py).
"""


def test_multicast_delivers_to_subscribed_group(make_cluster):
    cluster = make_cluster(["S1"])
    cluster.add_replica("r1", "G1", ["S1"])
    for i in range(10):
        cluster.client.multicast("S1", payload=i)
    cluster.run(until=1.0)
    assert cluster.payloads("r1") == list(range(10))


def test_two_replicas_same_group_agree(make_cluster):
    cluster = make_cluster(["S1", "S2"])
    cluster.add_replica("r1", "G1", ["S1", "S2"])
    cluster.add_replica("r2", "G1", ["S1", "S2"])
    env, client = cluster.env, cluster.client

    def load():
        for i in range(30):
            client.multicast("S1" if i % 2 else "S2", payload=i)
            yield env.timeout(0.002)

    env.process(load())
    cluster.run(until=2.0)
    assert len(cluster.delivered["r1"]) == 30
    assert cluster.delivered["r1"] == cluster.delivered["r2"]


def test_dynamic_subscribe_while_under_load(make_cluster):
    cluster = make_cluster(["S1", "S2"])
    replica = cluster.add_replica("r1", "G1", ["S1"])
    env, client = cluster.env, cluster.client

    sent_s2 = []

    def load():
        for i in range(100):
            client.multicast("S1", payload=("s1", i))
            yield env.timeout(0.005)

    def subscriber():
        yield env.timeout(0.2)
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")
        yield env.timeout(0.2)
        for i in range(20):
            client.multicast("S2", payload=("s2", i))
            sent_s2.append(i)
            yield env.timeout(0.005)

    env.process(load())
    env.process(subscriber())
    cluster.run(until=2.0)
    assert replica.subscriptions == ("S1", "S2")
    delivered = cluster.delivered["r1"]
    s1_payloads = [p for p, s in delivered if s == "S1"]
    s2_payloads = [p for p, s in delivered if s == "S2"]
    assert len(s1_payloads) == 100          # nothing from S1 is lost
    assert [i for _tag, i in s2_payloads] == sent_s2  # post-merge-point S2 all arrive


def test_dynamic_subscribe_two_replicas_identical_order(make_cluster):
    cluster = make_cluster(["S1", "S2"])
    r1 = cluster.add_replica("r1", "G1", ["S1"])
    r2 = cluster.add_replica("r2", "G1", ["S1"])
    env, client = cluster.env, cluster.client

    def load():
        for i in range(150):
            client.multicast("S1", payload=("s1", i))
            client.multicast("S2", payload=("s2", i))
            yield env.timeout(0.004)

    def subscriber():
        yield env.timeout(0.25)
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")

    env.process(load())
    env.process(subscriber())
    cluster.run(until=3.0)
    assert r1.subscriptions == ("S1", "S2")
    assert r2.subscriptions == ("S1", "S2")
    assert cluster.delivered["r1"] == cluster.delivered["r2"]
    # All of S1 plus the post-merge-point part of S2.
    assert len(cluster.delivered["r1"]) > 150


def test_unsubscribe_stops_delivery_from_stream(make_cluster):
    cluster = make_cluster(["S1", "S2"])
    replica = cluster.add_replica("r1", "G1", ["S1", "S2"])
    env, client = cluster.env, cluster.client

    def scenario():
        for i in range(10):
            client.multicast("S2", payload=("pre", i))
            yield env.timeout(0.005)
        yield env.timeout(0.2)
        client.unsubscribe_msg("G1", "S2")
        yield env.timeout(0.2)
        for i in range(10):
            client.multicast("S2", payload=("post", i))
            yield env.timeout(0.005)

    env.process(scenario())
    cluster.run(until=2.0)
    assert replica.subscriptions == ("S1",)
    tags = [p[0] for p, s in cluster.delivered["r1"] if s == "S2"]
    assert tags == ["pre"] * 10
    # The learner task for S2 was stopped and deregistered.
    assert "S2" not in replica.learners


def test_prepare_msg_enables_stall_free_subscription(make_cluster):
    cluster = make_cluster(["S1", "S2"])
    replica = cluster.add_replica("r1", "G1", ["S1"])
    env, client = cluster.env, cluster.client

    def scenario():
        yield env.timeout(0.5)   # S2 accumulates history (skips)
        client.prepare_msg("G1", new_stream="S2", via_stream="S1")
        yield env.timeout(0.3)   # background recovery completes
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")

    env.process(scenario())

    def load():
        for i in range(300):
            client.multicast("S1", payload=i)
            yield env.timeout(0.004)

    env.process(load())
    cluster.run(until=2.0)
    assert replica.subscriptions == ("S1", "S2")
    assert len([p for p, s in cluster.delivered["r1"] if s == "S1"]) == 300


def test_reconfiguration_stream_replacement(make_cluster):
    """Fig. 5's scheme: subscribe to S2, immediately unsubscribe S1."""
    cluster = make_cluster(["S1", "S2"])
    replica = cluster.add_replica("r1", "G1", ["S1"])
    env, client = cluster.env, cluster.client

    def scenario():
        yield env.timeout(0.3)
        client.prepare_msg("G1", new_stream="S2", via_stream="S1")
        yield env.timeout(0.2)
        client.subscribe_msg("G1", new_stream="S2", via_stream="S1")
        client.unsubscribe_msg("G1", "S1", via_stream="S1")
        yield env.timeout(0.3)
        for i in range(10):
            client.multicast("S2", payload=("new", i))
            yield env.timeout(0.005)

    env.process(scenario())
    cluster.run(until=2.0)
    assert replica.subscriptions == ("S2",)
    new_payloads = [p for p, s in cluster.delivered["r1"] if s == "S2"]
    assert [i for _tag, i in new_payloads] == list(range(10))
