"""Unit tests for the static Multi-Ring Paxos merger."""

import pytest

from repro.multicast.merge import StaticMerger
from repro.multicast.stream import TokenLog
from repro.paxos.types import AppValue, SkipToken


def value(tag):
    return AppValue(payload=tag)


def make(streams):
    logs = {name: TokenLog() for name in streams}
    delivered = []
    merger = StaticMerger(logs, lambda v, s, p: delivered.append((v.payload, s, p)))
    return logs, merger, delivered


def test_round_robin_alternates_streams():
    logs, merger, delivered = make(["S1", "S2"])
    for i in range(3):
        logs["S1"].append(value(f"a{i}"))
        logs["S2"].append(value(f"b{i}"))
    merger.pump()
    assert [v for v, _s, _p in delivered] == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_blocks_on_empty_stream():
    logs, merger, delivered = make(["S1", "S2"])
    logs["S1"].append(value("a0"))
    merger.pump()
    assert [v for v, _s, _p in delivered] == ["a0"]
    # S2 has nothing at position 0: S1's next value must wait.
    logs["S1"].append(value("a1"))
    merger.pump()
    assert [v for v, _s, _p in delivered] == ["a0"]
    logs["S2"].append(value("b0"))
    merger.pump()
    assert [v for v, _s, _p in delivered] == ["a0", "b0", "a1"]


def test_skips_unblock_idle_stream():
    logs, merger, delivered = make(["S1", "S2"])
    for i in range(4):
        logs["S1"].append(value(f"a{i}"))
    logs["S2"].append(SkipToken(count=4))
    merger.pump()
    assert [v for v, _s, _p in delivered] == ["a0", "a1", "a2", "a3"]


def test_single_stream_jumps_whole_skip():
    logs, merger, delivered = make(["S1"])
    logs["S1"].append(SkipToken(count=1000))
    logs["S1"].append(value("a"))
    merger.pump()
    assert delivered == [("a", "S1", 1000)]
    assert merger.positions["S1"] == 1001


def test_delivery_positions_reported():
    logs, merger, delivered = make(["S1"])
    logs["S1"].append(value("a"))
    logs["S1"].append(value("b"))
    merger.pump()
    assert delivered == [("a", "S1", 0), ("b", "S1", 1)]


def test_deterministic_stream_order_is_sorted():
    logs, merger, delivered = make(["S9", "S1"])
    logs["S1"].append(value("one"))
    logs["S9"].append(value("nine"))
    merger.pump()
    assert [v for v, _s, _p in delivered] == ["one", "nine"]


def test_empty_stream_set_rejected():
    with pytest.raises(ValueError):
        StaticMerger({}, lambda v, s, p: None)


def test_per_stream_delivery_counters():
    logs, merger, delivered = make(["S1", "S2"])
    logs["S1"].append(value("a"))
    logs["S2"].append(SkipToken(count=1))
    merger.pump()
    assert merger.delivered_per_stream == {"S1": 1, "S2": 0}
