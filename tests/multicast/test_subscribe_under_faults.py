"""Dynamic subscriptions under targeted faults (named schedules).

Each test pins one named :class:`repro.faults.scenarios.ScenarioSpec`
-- the same scenarios reachable via ``python -m repro faults run`` --
so a regression here reproduces exactly from the command line.
"""

from repro.faults import ScenarioRunner, get_scenario


def test_subscription_issued_mid_partition_completes_after_heal():
    """G1 subscribes to S2 while cut off from S2's acceptors (schedule
    ``subscribe-mid-partition``): the scan stalls, safety holds
    throughout, and the subscription commits after the heal (§II:
    safety always, liveness after GST)."""
    runner = ScenarioRunner(get_scenario("subscribe-mid-partition"), seed=1)
    result = runner.run()   # raises InvariantViolation on any breach
    assert result.converged
    for name in ("G1/r1", "G1/r2"):
        assert runner.cluster.replicas[name].subscriptions == ("S1", "S2")
    # S2 values were actually merged in after the partition healed.
    heal_at = runner.schedule.actions[0].end
    s2 = [r for r in runner.suite.logs["G1/r1"].records if r.stream == "S2"]
    assert s2
    assert all(r.at > heal_at for r in s2)


def test_coordinator_crash_at_merge_point_fails_over():
    """S2's coordinator crashes right at the merge point of a pending
    subscription (schedule ``coordinator-crash-at-merge``): the standby
    is promoted and both replicas commit the identical merge point."""
    runner = ScenarioRunner(get_scenario("coordinator-crash-at-merge"), seed=1)
    result = runner.run()
    assert result.converged
    crash_at = runner.schedule.actions[0].at
    for name in ("G1/r1", "G1/r2"):
        replica = runner.cluster.replicas[name]
        assert replica.subscriptions == ("S1", "S2")
        # Delivery continued past the crash: the standby took over.
        assert any(
            r.at > crash_at for r in runner.suite.logs[name].records
        )
    # The subscription committed with one agreed merge point per replica
    # (cross-replica equality is the merge-points invariant itself).
    merge_points = runner.suite._merge_points
    assert merge_points["G1/r1"]
    assert merge_points["G1/r1"] == merge_points["G1/r2"]


def test_learner_crash_during_prepare_recovers_and_subscribes():
    """A replica crashes while prepare_msg (§V-C) has it recovering the
    new stream in the background (schedule
    ``learner-crash-during-prepare``): it rejoins from its checkpoint,
    replays its suffix identically, and the later subscription commits
    on both replicas."""
    runner = ScenarioRunner(get_scenario("learner-crash-during-prepare"), seed=1)
    result = runner.run()
    assert result.converged
    # The crashed replica really went through checkpoint recovery ...
    assert runner.suite.logs["G1/r1"].rewinds == 1
    # ... and both replicas converged to the same Σ and sequence.
    assert runner.cluster.replicas["G1/r1"].subscriptions == ("S1", "S2")
    assert (
        runner.suite.logs["G1/r1"].sequence()
        == runner.suite.logs["G1/r2"].sequence()
    )


def test_duplication_storm_delivers_exactly_once():
    """40% wire duplication through a dynamic subscription (schedule
    ``duplicate-storm``): instance numbers and submission ids must
    deduplicate at every layer -- nothing is delivered twice."""
    runner = ScenarioRunner(get_scenario("duplicate-storm"), seed=1)
    result = runner.run()
    assert result.converged
    assert runner.cluster.network.messages_duplicated > 0
    for log in runner.suite.logs.values():
        ids = [r.msg_id for r in log.records]
        assert len(ids) == len(set(ids))


def test_reorder_storm_resequences():
    """Bounded FIFO-escaping reordering (schedule ``reorder-storm``):
    learners re-sequence by instance number, order is unaffected."""
    runner = ScenarioRunner(get_scenario("reorder-storm"), seed=1)
    result = runner.run()
    assert result.converged
    assert runner.cluster.network.messages_reordered > 0
