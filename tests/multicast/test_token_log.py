"""Unit tests for the position-indexed token log."""

import pytest

from repro.multicast.stream import TokenLog
from repro.paxos.types import AppValue, Batch, SkipToken


def test_append_advances_frontier_by_positions():
    log = TokenLog()
    log.append(AppValue(payload="a"))
    assert log.frontier == 1
    log.append(SkipToken(count=10))
    assert log.frontier == 11
    log.append(AppValue(payload="b"))
    assert log.frontier == 12


def test_token_covering_positions_inside_skip():
    log = TokenLog()
    log.append(AppValue(payload="a"))
    skip = SkipToken(count=5)
    log.append(skip)
    log.append(AppValue(payload="b"))
    for position in range(1, 6):
        token, index = log.token_covering(position)
        assert token is skip
        assert index == 1
    token, _ = log.token_covering(6)
    assert token.payload == "b"


def test_token_covering_beyond_frontier_returns_none():
    log = TokenLog()
    log.append(AppValue(payload="a"))
    token, _ = log.token_covering(1)
    assert token is None
    token, _ = log.token_covering(100)
    assert token is None


def test_token_covering_with_stale_hint():
    log = TokenLog()
    tokens = [AppValue(payload=i) for i in range(10)]
    for t in tokens:
        log.append(t)
    # hint far ahead and far behind both work
    token, _ = log.token_covering(2, hint=9)
    assert token is tokens[2]
    token, _ = log.token_covering(8, hint=0)
    assert token is tokens[8]


def test_append_batch_flattens_tokens():
    log = TokenLog()
    batch = Batch(tokens=(AppValue(payload="x"), SkipToken(count=3)))
    log.append_batch(batch)
    assert log.frontier == 4
    assert log.token_count() == 2


def test_position_before_base_rejected():
    log = TokenLog(start_position=100)
    with pytest.raises(ValueError):
        log.token_covering(50)


def test_start_of_and_token_at():
    log = TokenLog()
    log.append(SkipToken(count=4))
    log.append(AppValue(payload="a"))
    assert log.start_of(0) == 0
    assert log.start_of(1) == 4
    assert log.token_at(1).payload == "a"


def test_zero_position_token_rejected():
    log = TokenLog()
    with pytest.raises(ValueError):
        log.append(SkipToken(count=0))
