"""Integration tests: trim coordination and post-trim recovery."""

import pytest

from repro.multicast import MulticastClient, MulticastReplica, StreamDeployment, TrimCoordinator
from repro.paxos import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_world(stream_names=("S1",), lam=500, delta_t=0.05):
    env = Environment()
    net = Network(env, rng=RngRegistry(21), default_link=LinkSpec(latency=0.001))
    directory = {}
    for name in stream_names:
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=lam,
            delta_t=delta_t,
        )
        directory[name] = StreamDeployment(env, net, config)
        directory[name].start()
    return env, net, directory


def make_replica(env, net, directory, name, group, streams):
    delivered = []
    replica = MulticastReplica(
        env, net, name, group, directory,
        on_deliver=lambda v, s, p: delivered.append(v.payload),
    )
    replica.bootstrap(streams)
    return replica, delivered


def acceptor_log_sizes(directory, stream):
    return [len(a.core.log) for a in directory[stream].acceptors]


def test_trim_bounds_acceptor_log_growth():
    env, net, directory = make_world()
    replica, _d = make_replica(env, net, directory, "r1", "G", ["S1"])
    coordinator = TrimCoordinator(
        env, directory, [replica], interval=1.0, slack_instances=20
    )
    coordinator.start()
    env.run(until=10.0)
    # λ=500/Δt=0.05 => ~20 skip instances/s; after 10 s without trimming
    # the log would hold ~200 instances; the trim keeps it near slack.
    sizes = acceptor_log_sizes(directory, "S1")
    assert all(size < 80 for size in sizes), sizes
    assert coordinator.trims_issued


def test_trim_never_outpaces_slowest_consumer():
    env, net, directory = make_world()
    r1, _ = make_replica(env, net, directory, "r1", "G1", ["S1"])
    r2, _ = make_replica(env, net, directory, "r2", "G2", ["S1"])
    coordinator = TrimCoordinator(
        env, directory, [r1, r2], interval=1.0, slack_instances=10
    )
    coordinator.start()
    env.run(until=5.0)
    # Every issued horizon must lie at or below both replicas' consumed
    # instance at the time of the trim; spot-check the invariant now.
    for acceptor in directory["S1"].acceptors:
        trimmed = acceptor.core.log.trimmed_below
        for replica in (r1, r2):
            consumed = replica.safe_trim_instance("S1")
            assert consumed is not None
            assert trimmed <= consumed + 1


def test_subscription_after_trim_rebases_positions():
    """A group subscribing to a long-trimmed stream still aligns: the
    learner seeds its token log at the trimmed prefix's position."""
    env, net, directory = make_world(("S1", "S2"))
    r1, _ = make_replica(env, net, directory, "r1", "G1", ["S1"])
    # An S2-native consumer lets the trim coordinator trim S2.
    r2, _ = make_replica(env, net, directory, "r2", "G2", ["S2"])
    coordinator = TrimCoordinator(
        env, directory, [r1, r2], interval=0.5, slack_instances=10
    )
    coordinator.start()
    client = MulticastClient(env, net, "client", directory)
    env.run(until=6.0)
    assert any(stream == "S2" for _t, stream, _h in coordinator.trims_issued)
    trimmed_before = directory["S2"].acceptors[0].core.log.trimmed_below
    assert trimmed_before > 0

    # Now G1 subscribes to the trimmed S2.
    client.subscribe_msg("G1", new_stream="S2", via_stream="S1")
    env.run(until=8.0)
    assert r1.subscriptions == ("S1", "S2")
    # And delivery from S2 works post-subscription.
    sent = []
    def load():
        for i in range(5):
            client.multicast("S2", payload=("post", i))
            sent.append(i)
            yield env.timeout(0.01)
    env.process(load())
    env.run(until=9.0)
    # r1 received the post-subscription S2 messages.
    # (delivered payloads captured via r1's merger stats)
    assert r1.merger.stats.per_stream_delivered.get("S2", 0) >= 5


def test_trim_paused_while_subscription_pending():
    env, net, directory = make_world(("S1", "S2"))
    r1, _ = make_replica(env, net, directory, "r1", "G1", ["S1"])
    r2, _ = make_replica(env, net, directory, "r2", "G2", ["S2"])
    coordinator = TrimCoordinator(env, directory, [r1, r2], slack_instances=0)
    # Force a pending subscription on r1 for S2.
    r1.merger._pending = type("P", (), {"stream": "S2"})()
    assert coordinator.safe_horizon("S2") is None


def test_slack_validation():
    env, net, directory = make_world()
    with pytest.raises(ValueError):
        TrimCoordinator(env, directory, [], slack_instances=-1)
