"""Unit tests for the actor base class."""

from dataclasses import dataclass

import pytest

from repro.net.actor import Actor
from repro.net.messages import Message
from repro.sim import Environment, LinkSpec, Network, RngRegistry


@dataclass(frozen=True)
class Ping(Message):
    n: int


@dataclass(frozen=True)
class UnknownThing(Message):
    pass


class Echo(Actor):
    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.seen = []

    def on_ping(self, msg, src):
        self.seen.append((msg.n, src))


def make_world():
    env = Environment()
    net = Network(env, rng=RngRegistry(2), default_link=LinkSpec(latency=0.001))
    a = Echo(env, net, "a")
    b = Echo(env, net, "b")
    a.start()
    b.start()
    return env, net, a, b


def test_dispatch_routes_by_message_class_name():
    env, net, a, b = make_world()
    a.send("b", Ping(n=7))
    env.run(until=0.1)
    assert b.seen == [(7, "a")]


def test_unknown_message_raises():
    env, net, a, b = make_world()
    a.send("b", UnknownThing())
    with pytest.raises(NotImplementedError, match="on_unknown_thing"):
        env.run(until=0.1)


def test_crashed_actor_sends_nothing():
    env, net, a, b = make_world()
    a.crash()
    a.send("b", Ping(n=1))
    env.run(until=0.1)
    assert b.seen == []


def test_crash_and_recover_cycle():
    env, net, a, b = make_world()
    b.crash()
    a.send("b", Ping(n=1))
    env.run(until=0.1)
    b.recover()
    a.send("b", Ping(n=2))
    env.run(until=0.2)
    assert b.seen == [(2, "a")]


def test_stop_halts_receive_loop_without_crash():
    env, net, a, b = make_world()
    b.stop()
    a.send("b", Ping(n=1))
    env.run(until=0.1)
    # Stopping is not lossless: the in-flight message went to the halted
    # loop's outstanding get and is dropped (like a killed process).
    assert b.seen == []
    assert not b.crashed
    b.start()
    a.send("b", Ping(n=2))
    env.run(until=0.2)
    assert b.seen == [(2, "a")]


def test_double_start_rejected():
    env, net, a, b = make_world()
    with pytest.raises(RuntimeError):
        a.start()


def test_send_all_fans_out():
    env, net, a, b = make_world()
    c = Echo(env, net, "c")
    c.start()
    a.send_all(["b", "c"], Ping(n=9))
    env.run(until=0.1)
    assert b.seen == [(9, "a")]
    assert c.seen == [(9, "a")]


def test_running_property():
    env, net, a, b = make_world()
    assert a.running
    a.stop()
    assert not a.running
