"""Unit tests for message wire-size accounting."""

from dataclasses import dataclass

from repro.net.messages import Message, WIRE_HEADER_BYTES
from repro.paxos.messages import Decision, Phase2a, Propose
from repro.paxos.types import AppValue, Batch, SkipToken


@dataclass(frozen=True)
class Sample(Message):
    number: int
    text: str
    blob: bytes


def test_generic_field_size_estimate():
    msg = Sample(number=1, text="abcd", blob=b"12345678")
    assert msg.wire_size() == WIRE_HEADER_BYTES + 8 + 4 + 8


def test_empty_message_is_header_only():
    @dataclass(frozen=True)
    class Empty(Message):
        pass

    assert Empty().wire_size() == WIRE_HEADER_BYTES


def test_propose_size_dominated_by_value_payload():
    value = AppValue(payload=None, size=32 * 1024)
    msg = Propose(stream="S1", token=value)
    assert msg.wire_size() == WIRE_HEADER_BYTES + 32 * 1024


def test_phase2a_accounts_batch_payload():
    batch = Batch(tokens=(AppValue(payload=None, size=1000),))
    msg = Phase2a(stream="S1", ballot=0, instance=0, batch=batch)
    assert msg.wire_size() > 1000


def test_skip_decision_is_small():
    batch = Batch(tokens=(SkipToken(count=100_000),))
    msg = Decision(stream="S1", instance=0, batch=batch)
    # A skip covering 100k positions is still a tiny message.
    assert msg.wire_size() < 200


def test_collection_fields_sum_elements():
    @dataclass(frozen=True)
    class WithList(Message):
        items: tuple

    empty = WithList(items=())
    three = WithList(items=(1, 2, 3))
    assert three.wire_size() == empty.wire_size() + 3 * 8
