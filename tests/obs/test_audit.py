"""Online safety certifier unit tests (repro.obs.audit).

The certifier consumes the same event stream the post-hoc tools read,
but incrementally: these tests exercise the incremental reader against
every torn-input artifact a live run produces (appends mid-read, a
truncated final record, files that appear late), and the certifier
against clean histories, each violation class, clock-offset alignment,
restart incarnations, and the bounded-memory compaction path.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.audit import (
    IncrementalTraceReader,
    SafetyCertifier,
    TraceDirectorySource,
)


def _write(path, events, mode="w"):
    with open(path, mode, encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def _deliver(node, replica, stream, position, msg_id, ts=None,
             group="g1"):
    return {
        "ts": ts if ts is not None else 0.1 * position, "seq": position,
        "kind": "replica.deliver", "cat": "replica", "node": node,
        "replica": replica, "group": group, "stream": stream,
        "position": position, "msg_id": msg_id,
    }


def _clock(node, offset, rtt=0.001):
    return {"ts": 0.0, "seq": 0, "kind": "meta.clock", "cat": "meta",
            "node": node, "ref": "n1", "offset": offset, "rtt": rtt}


# -- IncrementalTraceReader --------------------------------------------

def test_reader_returns_only_new_events_per_poll(tmp_path):
    path = str(tmp_path / "n1.trace.jsonl")
    _write(path, [_deliver("n1", "r1", "s1", i, i) for i in (1, 2)])
    reader = IncrementalTraceReader(path)
    assert [e["position"] for e in reader.poll()] == [1, 2]
    assert reader.poll() == []
    _write(path, [_deliver("n1", "r1", "s1", 3, 3)], mode="a")
    assert [e["position"] for e in reader.poll()] == [3]
    assert reader.events_read == 3


def test_reader_missing_file_then_appearing(tmp_path):
    path = str(tmp_path / "late.trace.jsonl")
    reader = IncrementalTraceReader(path)
    assert reader.poll() == []
    _write(path, [_deliver("n1", "r1", "s1", 1, 1)])
    assert len(reader.poll()) == 1


def test_reader_buffers_torn_tail_until_completed(tmp_path):
    path = str(tmp_path / "n1.trace.jsonl")
    line = json.dumps(_deliver("n1", "r1", "s1", 1, 1)) + "\n"
    head, tail = line[:20], line[20:]
    with open(path, "w") as fh:
        fh.write(head)
    reader = IncrementalTraceReader(path)
    assert reader.poll() == []          # half a record is not an event
    with open(path, "a") as fh:
        fh.write(tail)
    events = reader.poll()
    assert len(events) == 1 and events[0]["position"] == 1
    assert reader.malformed == 0


def test_reader_torn_tail_never_completing_is_held_forever(tmp_path):
    # kill -9 leaves the file ending mid-record; the fragment must
    # neither crash the reader nor be misparsed as an event.
    path = str(tmp_path / "n1.trace.jsonl")
    _write(path, [_deliver("n1", "r1", "s1", 1, 1)])
    with open(path, "a") as fh:
        fh.write('{"ts": 0.9, "kind": "replica.del')
    reader = IncrementalTraceReader(path)
    assert len(reader.poll()) == 1
    for _ in range(3):
        assert reader.poll() == []
    assert reader.malformed == 0        # still buffered, not condemned


def test_reader_counts_malformed_lines_and_keeps_going(tmp_path):
    path = str(tmp_path / "n1.trace.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps(_deliver("n1", "r1", "s1", 1, 1)) + "\n")
        fh.write("not json at all\n")
        fh.write("42\n")                # parses, but is not an event dict
        fh.write(json.dumps(_deliver("n1", "r1", "s1", 2, 2)) + "\n")
    reader = IncrementalTraceReader(path)
    assert [e["position"] for e in reader.poll()] == [1, 2]
    assert reader.malformed == 2


def test_reader_resets_on_truncation(tmp_path):
    path = str(tmp_path / "n1.trace.jsonl")
    _write(path, [_deliver("n1", "r1", "s1", i, i) for i in (1, 2, 3)])
    reader = IncrementalTraceReader(path)
    assert len(reader.poll()) == 3
    _write(path, [_deliver("n1", "r1", "s1", 1, 1)])   # recreated, shorter
    events = reader.poll()
    assert [e["position"] for e in events] == [1]
    assert reader.resets == 1


# -- TraceDirectorySource ----------------------------------------------

def test_directory_source_discovers_new_files_between_polls(tmp_path):
    _write(str(tmp_path / "n1.trace.jsonl"),
           [_deliver("n1", "r1", "s1", 1, 1)])
    source = TraceDirectorySource(directory=str(tmp_path))
    assert len(source.poll()) == 1
    # A restarted worker's fresh incarnation trace appears mid-run.
    _write(str(tmp_path / "n2-r1.trace.jsonl"),
           [_deliver("n2-r1", "r2", "s1", 1, 1)])
    assert len(source.poll()) == 1
    assert source.events_read == 2


def test_directory_source_skips_merged_and_non_trace_files(tmp_path):
    _write(str(tmp_path / "n1.trace.jsonl"),
           [_deliver("n1", "r1", "s1", 1, 1)])
    _write(str(tmp_path / "merged.trace.jsonl"),
           [_deliver("n1", "r1", "s1", 1, 1)])
    _write(str(tmp_path / "alerts.jsonl"),
           [_deliver("n1", "r1", "s1", 1, 1)])
    source = TraceDirectorySource(directory=str(tmp_path))
    assert len(source.poll()) == 1


# -- SafetyCertifier: clean histories ----------------------------------

def test_clean_two_replica_history_certifies(tmp_path):
    certifier = SafetyCertifier()
    for replica, node in (("r1", "n1"), ("r2", "n2")):
        for position in (1, 2, 3):
            violations = certifier.observe(
                _deliver(node, replica, "s1", position, 100 + position)
            )
            assert violations == []
    assert certifier.check_acyclic() == []
    summary = certifier.summary()
    assert summary["ok"] and summary["delivered"] == 6
    assert summary["watermarks"]["s1"] == {"low": 3, "high": 3}


def test_interleaved_streams_prefix_agreement_ok():
    # Both observers deliver the same interleaving of two streams.
    certifier = SafetyCertifier()
    order = [("s1", 1, 10), ("s2", 1, 20), ("s1", 2, 11), ("s2", 2, 21)]
    for node, replica in (("n1", "r1"), ("n2", "r2")):
        for stream, position, msg in order:
            assert certifier.observe(
                _deliver(node, replica, stream, position, msg)
            ) == []
    assert certifier.check_acyclic() == []


def test_lagging_replica_is_a_prefix_not_a_violation():
    certifier = SafetyCertifier()
    for position in (1, 2, 3):
        certifier.observe(_deliver("n1", "r1", "s1", position, position))
    certifier.observe(_deliver("n2", "r2", "s1", 1, 1))   # behind, fine
    assert certifier.violations == []


# -- SafetyCertifier: violations ---------------------------------------

def test_stream_agreement_violation_across_nodes():
    certifier = SafetyCertifier()
    certifier.observe(_deliver("n1", "r1", "s1", 1, 10))
    fresh = certifier.observe(_deliver("n2", "r2", "s1", 1, 99))
    assert [v.property for v in fresh] == [
        "stream-agreement", "prefix-agreement"
    ]
    assert not certifier.summary()["ok"]


def test_duplicate_delivery_violation():
    certifier = SafetyCertifier()
    certifier.observe(_deliver("n1", "r1", "s1", 1, 10))
    certifier.observe(_deliver("n1", "r1", "s1", 2, 11))
    fresh = certifier.observe(_deliver("n1", "r1", "s1", 2, 11))
    assert [v.property for v in fresh] == ["duplicate-delivery"]


def test_restart_incarnation_replay_is_not_a_duplicate():
    # A kill -9'd worker restarts with a fresh trace node id and
    # replays deliveries from position 1: a new observer agreeing with
    # the canon, not a duplicate.
    certifier = SafetyCertifier()
    for position in (1, 2):
        certifier.observe(_deliver("n3", "r3", "s1", position, position))
    for position in (1, 2):
        assert certifier.observe(
            _deliver("n3-r1", "r3", "s1", position, position)
        ) == []
    assert certifier.violations == []


def test_prefix_agreement_violation_on_reordered_deliveries():
    certifier = SafetyCertifier()
    order = [("s1", 1, 10), ("s2", 1, 20)]
    for stream, position, msg in order:
        certifier.observe(_deliver("n1", "r1", stream, position, msg))
    for stream, position, msg in reversed(order):
        certifier.observe(_deliver("n2", "r2", stream, position, msg))
    assert "prefix-agreement" in {v.property for v in certifier.violations}


def test_acyclic_order_violation_across_groups():
    # Group A orders m1 before m2; group B orders m2 before m1.
    certifier = SafetyCertifier()
    certifier.observe(_deliver("n1", "r1", "s1", 1, "m1", group="gA"))
    certifier.observe(_deliver("n1", "r1", "s2", 1, "m2", group="gA"))
    certifier.observe(_deliver("n2", "r2", "s2", 1, "m2", group="gB"))
    certifier.observe(_deliver("n2", "r2", "s1", 1, "m1", group="gB"))
    fresh = certifier.check_acyclic()
    assert [v.property for v in fresh] == ["acyclic-order"]


def test_merge_point_mismatch_violation():
    certifier = SafetyCertifier()
    base = {"ts": 1.0, "seq": 1, "cat": "merge", "stream": "s2",
            "request_id": 7}
    certifier.observe({**base, "kind": "merge.subscribe.commit",
                       "node": "n1", "replica": "r1", "merge_point": 12})
    fresh = certifier.observe({**base, "kind": "merge.subscribe.commit",
                               "node": "n2", "replica": "r2",
                               "merge_point": 13})
    assert [v.property for v in fresh] == ["merge-point"]


def test_worker_reported_invariant_violations_are_collected():
    certifier = SafetyCertifier()
    certifier.observe({"ts": 1.0, "seq": 1, "kind": "invariant.violation",
                       "cat": "invariant", "node": "n1",
                       "message": "relative delivery order violated"})
    assert certifier.worker_violations == [
        "n1: relative delivery order violated"
    ]


# -- clock alignment ---------------------------------------------------

def test_clock_offsets_align_staleness_clock():
    certifier = SafetyCertifier()
    certifier.observe(_clock("n2", 10.0))
    # n2's local ts 11.0 is reference time 1.0, not 11.0.
    certifier.observe(_deliver("n2", "r2", "s1", 1, 1, ts=11.0))
    assert certifier.now == pytest.approx(1.0)
    certifier.observe(_deliver("n1", "r1", "s1", 1, 1, ts=2.0))
    assert certifier.now == pytest.approx(2.0)


def test_watch_sample_exposes_pending_age_and_reconfigs():
    certifier = SafetyCertifier()
    certifier.observe({"ts": 1.0, "seq": 1, "kind": "coord.propose",
                       "cat": "coord", "node": "n1", "stream": "s1",
                       "type": "ValueToken"})
    certifier.observe(_deliver("n1", "r1", "s1", 1, 1, ts=4.0))
    sample = certifier.watch_sample()
    assert sample["streams"]["s1"]["pending"] == 1
    assert sample["streams"]["s1"]["pending_age"] == pytest.approx(3.0)
    # The decide zeroes the pending accounting.
    certifier.observe({"ts": 4.5, "seq": 2, "kind": "coord.decide",
                       "cat": "coord", "node": "n1", "stream": "s1",
                       "instance": 1, "positions": 1})
    sample = certifier.watch_sample()
    assert sample["streams"]["s1"]["pending"] == 0
    assert sample["streams"]["s1"]["pending_age"] is None


def test_never_committing_reconfig_surfaces_as_pending_age():
    certifier = SafetyCertifier()
    certifier.observe({"ts": 1.0, "seq": 1, "kind": "control.subscribe",
                       "cat": "control", "node": "n1", "stream": "s2",
                       "request_id": 9})
    certifier.observe(_deliver("n1", "r1", "s1", 1, 1, ts=8.0))
    sample = certifier.watch_sample()
    assert sample["pending_reconfigs"]["9"] == pytest.approx(7.0)
    # ...and it is an alert-plane concern, never a safety violation.
    assert certifier.violations == []


def test_unsubscribed_replica_is_excluded_from_low_watermark():
    certifier = SafetyCertifier()
    for node, replica in (("n1", "r1"), ("n2", "r2")):
        certifier.observe(_deliver(node, replica, "s1", 1, 1))
    certifier.observe({"ts": 0.2, "seq": 3, "kind": "merge.unsubscribe",
                       "cat": "merge", "node": "n2", "replica": "r2",
                       "stream": "s1", "request_id": 4, "merge_point": 1})
    certifier.observe(_deliver("n1", "r1", "s1", 2, 2))
    assert certifier.watermarks()["s1"] == {"low": 2, "high": 2}


# -- compaction --------------------------------------------------------

def test_compaction_bounds_memory_and_keeps_certifying():
    certifier = SafetyCertifier(compact_limit=50, compact_every=25)
    for position in range(1, 301):
        certifier.observe(_deliver("n1", "r1", "s1", position, position))
    assert len(certifier.streams["s1"].values) <= 75   # limit + epoch slack
    assert len(certifier.groups["g1"].canon) <= 75
    assert certifier.violations == []
    # Old positions are no longer value-checked (documented tradeoff)...
    assert certifier.observe(_deliver("n2", "r2", "s1", 1, 999)) == []
    # ...but fresh positions still are.
    certifier.observe(_deliver("n3", "r3", "s1", 300, 300))
    fresh = certifier.observe(_deliver("n3", "r3", "s1", 301, 301))
    assert certifier.streams["s1"].floor > 1
    # Per-observer monotonicity is still enforced below the floor.
    dup = certifier.observe(_deliver("n2", "r2", "s1", 1, 1))
    assert [v.property for v in dup] == ["duplicate-delivery"]
