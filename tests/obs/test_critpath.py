"""Unit tests for critical-path extraction (repro.obs.critpath).

Hand-written event sequences exercise the five-segment decomposition,
the straggler / head-of-line / transport attributions, clock-skewed
merged traces (no negative segments), and the budget report round-trip.
"""

import pytest

from repro.obs import LifecycleIndex
from repro.obs.critpath import (
    BUDGET_FORMAT,
    SEGMENT_NAMES,
    budget_lines,
    diff_budgets,
    extract_critical_paths,
    latency_budget,
    load_budget,
    write_budget,
)
from repro.obs.schema import validate_event


def _seq(events):
    """Attach envelope fields to bare (ts, kind, fields) triples."""
    out = []
    for seq, (ts, kind, fields) in enumerate(events):
        event = {"ts": ts, "seq": seq, "kind": kind,
                 "cat": kind.partition(".")[0]}
        event.update(fields)
        out.append(event)
    return out


def _lifecycle(msg_id, base, *, closed_by="S1/a2", stream="S1",
               deliver_offset=1.0):
    """One complete lifecycle starting at ``base`` with 0.1s stages."""
    return [
        (base + 0.0, "client.submit",
         dict(client="c", stream=stream, msg_id=msg_id, size=32)),
        (base + 0.1, "coord.propose",
         dict(coordinator=f"{stream}/coord", stream=stream,
              type="AppValue", msg_id=msg_id)),
        (base + 0.3, "coord.phase2",
         dict(coordinator=f"{stream}/coord", stream=stream,
              instance=msg_id, msg_ids=[msg_id], positions=[msg_id])),
        (base + 0.6, "coord.decide",
         dict(coordinator=f"{stream}/coord", stream=stream,
              instance=msg_id, positions=[msg_id], closed_by=closed_by)),
        (base + 0.8, "learner.learned",
         dict(replica="G1/r1", stream=stream, instance=msg_id,
              msg_ids=[msg_id], positions=[msg_id])),
        (base + deliver_offset, "replica.deliver",
         dict(replica="G1/r1", group="G1", stream=stream,
              position=msg_id, msg_id=msg_id)),
    ]


def test_segments_telescope_and_attribute_fully():
    index = LifecycleIndex().consume_all(_seq(_lifecycle(1, 0.0)))
    (path,) = extract_critical_paths(index)
    assert path.msg_id == 1
    assert tuple(path.segments) == SEGMENT_NAMES
    assert path.total == pytest.approx(1.0)
    assert sum(path.segments.values()) == pytest.approx(path.total)
    assert path.segments["submit->propose"] == pytest.approx(0.1)
    assert path.segments["batch_wait"] == pytest.approx(0.2)
    assert path.segments["quorum_wait"] == pytest.approx(0.3)
    assert path.segments["dissemination"] == pytest.approx(0.2)
    assert path.segments["merge_wait"] == pytest.approx(0.2)
    assert path.closed_by == "S1/a2"


def test_budget_attributes_everything_on_complete_lifecycles():
    events = _seq(_lifecycle(1, 0.0) + _lifecycle(2, 5.0, closed_by="S1/a3"))
    budget = latency_budget(LifecycleIndex().consume_all(events))
    assert budget["format"] == BUDGET_FORMAT
    assert budget["messages"] == {
        "observed": 2, "delivered": 2, "complete": 2,
    }
    assert budget["coverage"] == 1.0
    assert budget["attributed_share"] == pytest.approx(1.0)
    assert [seg["name"] for seg in budget["segments"]] == list(SEGMENT_NAMES)
    assert sum(seg["share"] for seg in budget["segments"]) \
        == pytest.approx(1.0, abs=1e-4)
    stragglers = {s["acceptor"]: s["closed"] for s in budget["stragglers"]}
    assert stragglers == {"S1/a2": 1, "S1/a3": 1}


def test_partial_lifecycles_excluded_but_counted():
    # msg 2 is submitted and never delivered: no path, but it shows up
    # in the observed count and leaves coverage at 100% of *delivered*.
    events = _seq(_lifecycle(1, 0.0) + [
        (9.0, "client.submit", dict(client="c", stream="S1", msg_id=2,
                                    size=32)),
    ])
    index = LifecycleIndex().consume_all(events)
    assert len(extract_critical_paths(index)) == 1
    budget = latency_budget(index)
    assert budget["messages"]["observed"] == 2
    assert budget["messages"]["complete"] == 1
    assert budget["coverage"] == 1.0


def test_empty_index_yields_empty_budget():
    budget = latency_budget(LifecycleIndex())
    assert budget["messages"]["complete"] == 0
    assert budget["segments"] == []
    assert budget["transport_ms"] is None
    lines = budget_lines(budget)
    assert any("nothing to attribute" in line for line in lines)


def test_head_of_line_blamed_on_overlapping_episode():
    # The delivering replica was blocked on S2 for [0.85, 1.0] -- that
    # episode overlaps msg 1's merge window [0.8, 1.0] the longest.
    events = _seq(_lifecycle(1, 0.0) + [
        (1.0, "merge.head_of_line",
         dict(replica="G1/r1", group="G1", stream="S2", waited=0.15)),
        # A later episode on another replica must not be blamed.
        (2.0, "merge.head_of_line",
         dict(replica="G1/r2", group="G1", stream="S3", waited=1.0)),
    ])
    index = LifecycleIndex().consume_all(events)
    (path,) = extract_critical_paths(index)
    assert path.blocking_stream == "S2"
    budget = latency_budget(index)
    (blocker,) = budget["blockers"]
    assert blocker["stream"] == "S2"
    assert blocker["messages"] == 1
    assert blocker["share"] == pytest.approx(1.0)


def test_transport_split_uses_clock_offsets():
    # origin_ts is n1's raw clock, 0.5s ahead of the merged timeline;
    # meta.clock re-aligns it: transit = 0.35 - (0.8 - 0.5) = 0.05,
    # queue 0.02 of that, wire the remaining 0.03.
    events = _seq([
        (0.0, "meta.clock", dict(node="n1", ref="n0", offset=0.5)),
    ] + _lifecycle(1, 0.0) + [
        (0.3, "transport.queue_wait",
         dict(dst="n0", msg_id=1, wait=0.02)),
        (0.35, "net.context",
         dict(src="n1", dst="n0", origin="n1", msg_id=1, origin_ts=0.8)),
    ])
    index = LifecycleIndex().consume_all(events)
    assert index.clock_offsets == {"n1": 0.5}
    (path,) = extract_critical_paths(index)
    assert path.queue_wait == pytest.approx(0.02)
    assert path.wire_wait == pytest.approx(0.03)
    transport = latency_budget(index)["transport_ms"]
    assert transport["queue"]["p50"] == pytest.approx(20.0)
    assert transport["wire"]["p50"] == pytest.approx(30.0)


def test_skewed_merged_trace_never_goes_negative():
    # A merged two-node trace with imperfect alignment: the decide is
    # stamped *after* the learn.  Raw delta is negative; the clamped
    # segment must be 0 and the attributed share can only drop.
    events = _seq([
        (0.0, "client.submit",
         dict(client="c", stream="S1", msg_id=1, size=32, node="n0")),
        (0.1, "coord.propose",
         dict(coordinator="S1/coord", stream="S1", type="AppValue",
              msg_id=1, node="n0")),
        (0.2, "coord.phase2",
         dict(coordinator="S1/coord", stream="S1", instance=1,
              msg_ids=[1], positions=[1], node="n0")),
        (0.45, "learner.learned",
         dict(replica="G1/r1", stream="S1", instance=1, msg_ids=[1],
              positions=[1], node="n1")),
        (0.5, "coord.decide",
         dict(coordinator="S1/coord", stream="S1", instance=1,
              positions=[1], node="n0")),
        (0.6, "replica.deliver",
         dict(replica="G1/r1", group="G1", stream="S1", position=1,
              msg_id=1, node="n1")),
    ])
    index = LifecycleIndex().consume_all(events)
    (path,) = extract_critical_paths(index)
    assert all(v >= 0.0 for v in path.segments.values())
    assert path.segments["dissemination"] == 0.0
    # The out-of-order decide truncates merge_wait instead of
    # double-counting the overlap: segments still partition the total.
    assert sum(path.segments.values()) == pytest.approx(path.total)
    budget = latency_budget(index)
    assert budget["attributed_share"] == pytest.approx(1.0)


def test_budget_is_deterministic():
    events = _seq(
        _lifecycle(1, 0.0) + _lifecycle(2, 3.0, closed_by="S1/a3")
        + _lifecycle(3, 6.0, stream="S2")
    )
    one = latency_budget(LifecycleIndex().consume_all(events))
    two = latency_budget(LifecycleIndex().consume_all(events))
    assert one == two


def test_new_event_kinds_are_schema_valid():
    events = _seq([
        (1.0, "merge.head_of_line",
         dict(replica="G1/r1", group="G1", stream="S2", waited=0.1)),
        (2.0, "transport.queue_wait", dict(dst="n1", msg_id=7, wait=0.01)),
    ])
    for event in events:
        validate_event(event)


def test_budget_lines_and_diff_render():
    events = _seq(_lifecycle(1, 0.0))
    budget = latency_budget(LifecycleIndex().consume_all(events))
    lines = budget_lines(budget)
    assert any(line.startswith("SEGMENT") for line in lines)
    assert any("attributed: 100.0%" in line for line in lines)
    diff = diff_budgets(budget, budget)
    assert any("TOTAL" in line for line in diff)
    assert all("new" not in line for line in diff)


def test_budget_roundtrip_and_format_check(tmp_path):
    events = _seq(_lifecycle(1, 0.0))
    budget = latency_budget(LifecycleIndex().consume_all(events))
    path = tmp_path / "budget.json"
    write_budget(budget, str(path))
    assert load_budget(str(path)) == budget
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "something-else"}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_budget(str(bad))
