"""End-to-end: a traced cluster run reconstructs every delivery's path."""

from repro.harness.cluster import MulticastCluster
from repro.obs import (
    LifecycleIndex,
    ListSink,
    MetricsRegistry,
    Tracer,
    installed,
    validate_event,
)


def test_traced_cluster_run_yields_complete_lifecycles():
    sink = ListSink()
    index = LifecycleIndex()
    tracer = Tracer(sinks=[sink, index])
    registry = MetricsRegistry()
    with installed(tracer, metrics=registry):
        cluster = MulticastCluster(streams=("S1",), seed=3)
        cluster.add_replica("G1/r1", "G1", ["S1"])
        cluster.add_replica("G1/r2", "G1", ["S1"])
        for i in range(20):
            cluster.env.call_at(
                0.05 + 0.01 * i, cluster.client.multicast, "S1", ("p", i)
            )
        cluster.run(until=2.0)

    # Every emitted event matches the schema.
    for event in sink.events:
        validate_event(event)

    # Every delivered message's submit -> deliver path is reconstructed,
    # at both replicas.
    complete, delivered = index.coverage()
    assert delivered == 20
    assert complete == delivered
    for lifecycle in index.delivered_messages():
        assert set(lifecycle.delivered_at) == {"G1/r1", "G1/r2"}
        stages = lifecycle.stage_latencies()
        assert stages["submit->deliver"] > 0.0

    # The metrics registry bound itself to the cluster environment and
    # collected per-replica delivery counters along the way.
    assert registry.env is cluster.env
    assert registry.counter("G1/r1", "delivered").total == 20
    assert registry.counter("G1/r2", "delivered").total == 20
    assert registry.gauge("G1/r1", "merge_lag").value is not None


def test_untraced_cluster_has_no_tracer_overhead_hooks():
    cluster = MulticastCluster(streams=("S1",), seed=3)
    assert cluster.env.tracer is None
    assert cluster.env.metrics is None
    cluster.add_replica("G1/r1", "G1", ["S1"])
    cluster.env.call_at(0.05, cluster.client.multicast, "S1", ("p", 0))
    cluster.run(until=1.0)
    assert len(cluster.delivered["G1/r1"]) == 1
