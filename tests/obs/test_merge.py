"""Clock-aligned merging of per-node traces (repro.obs.merge).

Synthetic two-node traces with a known skew: alignment must shift the
timestamps back into the reference domain, causal repair must clamp
residual inversions (a decide must not precede its submit), node-local
order must survive, and the merged file must be consumable by the
existing tooling (schema validator, LifecycleIndex).
"""

from __future__ import annotations

import pytest

from repro.obs import (
    LifecycleIndex,
    cross_node_messages,
    merge_events,
    merge_files,
    read_trace,
    trace_offsets,
    validate_file,
    write_trace,
)


def _event(kind, ts, seq, node, **fields):
    event = {"ts": ts, "seq": seq, "kind": kind, "cat": kind.split(".")[0],
             "node": node}
    event.update(fields)
    return event


def _lifecycle_traces(skew=2.0):
    """msg 7 submitted on n1, decided on n2 (clock ahead by ``skew``),
    delivered back on n1."""
    n1 = [
        _event("meta.node", 0.0, 0, "n1", clock="wall"),
        _event("meta.clock", 0.0, 1, "n1", ref="n1", offset=0.0),
        _event("client.submit", 10.0, 2, "n1",
               client="client", stream="s2", msg_id=7, size=64),
        _event("replica.deliver", 10.5, 3, "n1",
               replica="r1", group="g1", stream="s2", position=0, msg_id=7),
    ]
    n2 = [
        _event("meta.node", 0.0, 0, "n2", clock="wall"),
        _event("meta.clock", 5.0, 1, "n2", ref="n1", offset=skew),
        _event("coord.phase2", 10.1 + skew, 2, "n2",
               coordinator="s2/coord", stream="s2", instance=0,
               msg_ids=[7], positions=[0]),
        _event("coord.decide", 10.2 + skew, 3, "n2",
               coordinator="s2/coord", stream="s2", instance=0,
               msg_ids=[7], positions=[0]),
    ]
    return {"n1": n1, "n2": n2}


def test_trace_offsets_reads_meta_clock_last_wins():
    traces = _lifecycle_traces(skew=2.0)
    traces["n2"].append(
        _event("meta.clock", 9.0, 4, "n2", ref="n1", offset=2.5)
    )
    offsets = trace_offsets(traces)
    assert offsets == {"n1": 0.0, "n2": 2.5}


def test_offsets_align_cross_node_timestamps():
    merged = merge_events(_lifecycle_traces(skew=2.0))
    by_kind = {e["kind"]: e for e in merged}
    # The decide happened on n2's clock at 12.2 but lands between the
    # submit (10.0) and the deliver (10.5) once aligned.
    assert by_kind["client.submit"]["ts"] == pytest.approx(10.0)
    assert by_kind["coord.decide"]["ts"] == pytest.approx(10.2)
    assert by_kind["replica.deliver"]["ts"] == pytest.approx(10.5)
    kinds = [e["kind"] for e in merged if e["kind"] != "meta.merge"]
    assert kinds.index("client.submit") < kinds.index("coord.decide")
    assert kinds.index("coord.decide") < kinds.index("replica.deliver")


def test_causal_repair_clamps_inverted_stages():
    # Overstated offset: the decide would align to 9.7, *before* its
    # submit at 10.0.  The per-message stage floor must clamp it up.
    merged = merge_events(_lifecycle_traces(skew=2.0),
                          offsets={"n1": 0.0, "n2": 4.5})
    by_kind = {e["kind"]: e for e in merged}
    assert by_kind["coord.decide"]["ts"] >= by_kind["client.submit"]["ts"]
    kinds = [e["kind"] for e in merged]
    assert kinds.index("client.submit") < kinds.index("coord.decide")


def test_node_local_order_survives_alignment():
    merged = merge_events(_lifecycle_traces(skew=2.0))
    for node in ("n1", "n2"):
        node_seqs = [e["node_seq"] for e in merged
                     if e.get("node") == node and e.get("node_seq") is not None]
        assert node_seqs == sorted(node_seqs)
    # Timestamps are globally non-decreasing after repair.
    timestamps = [e["ts"] for e in merged]
    assert timestamps == sorted(timestamps)


def test_merge_header_and_global_renumbering():
    merged = merge_events(_lifecycle_traces(skew=2.0))
    assert merged[0]["kind"] == "meta.merge"
    assert merged[0]["nodes"] == ["n1", "n2"]
    assert merged[0]["offsets"]["n2"] == pytest.approx(2.0)
    assert [e["seq"] for e in merged] == list(range(len(merged)))


def test_merged_file_passes_schema_validation(tmp_path):
    traces = _lifecycle_traces(skew=2.0)
    paths = []
    for node, events in traces.items():
        path = str(tmp_path / f"{node}.trace.jsonl")
        write_trace(events, path)
        paths.append(path)
    out = str(tmp_path / "merged.jsonl")
    merged = merge_files(paths, out=out)
    assert validate_file(out) == len(merged)
    assert read_trace(out) == merged


def test_lifecycle_index_consumes_merged_timeline():
    merged = merge_events(_lifecycle_traces(skew=2.0))
    index = LifecycleIndex().consume_all(merged)
    lifecycle = index.messages[7]
    assert lifecycle.submitted_at == pytest.approx(10.0)
    assert lifecycle.decided_at == pytest.approx(10.2)
    assert lifecycle.delivered_at["r1"] == pytest.approx(10.5)
    assert lifecycle.decided_at >= lifecycle.submitted_at


def test_cross_node_messages_requires_two_nodes():
    merged = merge_events(_lifecycle_traces(skew=2.0))
    spanning = cross_node_messages(merged)
    assert spanning == {7: {"n1", "n2"}}
    # A single-node lifecycle does not count as spanning.
    solo = [
        _event("client.submit", 1.0, 0, "n1",
               client="client", stream="s1", msg_id=9, size=64),
        _event("replica.deliver", 1.2, 1, "n1",
               replica="r1", group="g1", stream="s1", position=0, msg_id=9),
    ]
    assert cross_node_messages(solo) == {}


def test_merge_without_recorded_offsets_defaults_to_zero():
    traces = {
        "a": [_event("client.submit", 3.0, 0, "a",
                     client="client", stream="s1", msg_id=1, size=64)],
        "b": [_event("replica.deliver", 2.0, 0, "b",
                     replica="r1", group="g1", stream="s1", position=0,
                     msg_id=2)],
    }
    merged = merge_events(traces)
    assert merged[0]["kind"] == "meta.merge"
    assert [e["ts"] for e in merged[1:]] == [2.0, 3.0]
