"""Unit tests for the per-actor metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import Gauge, MetricsRegistry
from repro.obs.trace import current_metrics, installed
from repro.sim.core import Environment


def test_gauge_tracks_last_and_peak():
    env = Environment()
    gauge = Gauge(env, "depth")
    assert gauge.value is None and gauge.peak is None
    gauge.record(3.0)
    gauge.record(9.0)
    gauge.record(4.0)
    assert gauge.value == 4.0
    assert gauge.peak == 9.0
    assert len(gauge) == 3


def test_registry_requires_environment():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError, match="not bound"):
        registry.counter("a", "ops")


def test_registry_bind_first_env_wins():
    registry = MetricsRegistry()
    env1, env2 = Environment(), Environment()
    registry.bind(env1)
    registry.bind(env2)
    assert registry.env is env1


def test_instruments_are_keyed_and_reused():
    registry = MetricsRegistry(env=Environment())
    c1 = registry.counter("G1/r1", "retransmits")
    assert registry.counter("G1/r1", "retransmits") is c1
    assert registry.counter("G1/r2", "retransmits") is not c1
    g = registry.gauge("G1/r1", "inbox_depth")
    assert registry.gauge("G1/r1", "inbox_depth") is g
    h = registry.histogram("G1/r1", "checkpoint_bytes")
    assert registry.histogram("G1/r1", "checkpoint_bytes") is h
    assert registry.actors() == ["G1/r1", "G1/r2"]


def test_summary_rows_render_all_instrument_kinds():
    registry = MetricsRegistry(env=Environment())
    registry.counter("r1", "ops").record()
    registry.counter("r1", "ops").record(weight=2)
    registry.gauge("r1", "lag").record(5.0)
    registry.histogram("r1", "bytes").record(100.0)
    registry.histogram("r1", "bytes").record(300.0)
    registry.gauge("r2", "lag")   # no samples yet
    rows = {(actor, name): (kind, text)
            for actor, name, kind, text in registry.summary_rows()}
    assert rows[("r1", "ops")] == ("counter", "total=3")
    assert rows[("r1", "lag")] == ("gauge", "last=5 peak=5")
    assert "mean=200" in rows[("r1", "bytes")][1]
    assert rows[("r2", "lag")] == ("gauge", "(no samples)")


def test_registry_instruments_are_bounded():
    registry = MetricsRegistry(env=Environment(), max_samples=4)
    histogram = registry.histogram("r1", "bytes")
    for i in range(10):
        histogram.record(float(i))
    assert len(histogram) == 4
    assert histogram.values == (6.0, 7.0, 8.0, 9.0)
    counter = registry.counter("r1", "ops")
    for _ in range(10):
        counter.record()
    assert counter.total == 10   # lifetime total survives eviction


def test_environment_adopts_installed_registry():
    registry = MetricsRegistry()
    with installed(metrics=registry):
        assert current_metrics() is registry
        env = Environment()
        assert env.metrics is registry
        assert registry.env is env   # bound at construction
    assert current_metrics() is None
    assert Environment().metrics is None


# -- dump round-trip (live --metrics-out -> repro stats) ---------------

def test_empty_registry_dump_round_trips():
    registry = MetricsRegistry()
    dump = registry.dump()
    assert dump["format"] == "repro-metrics/1"
    assert dump["counters"] == []
    assert dump["gauges"] == []
    assert dump["histograms"] == []
    from repro.obs.metrics import rows_from_dump
    assert rows_from_dump(dump) == []


def test_sampleless_instruments_survive_dump_round_trip():
    from repro.obs.metrics import rows_from_dump

    env = Environment()
    registry = MetricsRegistry()
    registry.bind(env)
    registry.gauge("r1", "depth")                # never recorded
    registry.histogram("client", "latency_ms")   # never recorded
    registry.counter("r1", "ops")                # zero total

    dump = registry.dump()
    gauge_entry = dump["gauges"][0]
    assert gauge_entry["last"] is None and gauge_entry["peak"] is None
    histogram_entry = dump["histograms"][0]
    # Stat keys are explicit nulls, never absent: consumers index them.
    for key in ("mean", "p50", "p95", "p99"):
        assert key in histogram_entry and histogram_entry[key] is None
    assert histogram_entry["n"] == 0

    # JSON round trip preserves the shape, and the renderer keeps the
    # actor rows instead of dropping or crashing on them.
    import json
    rows = rows_from_dump(json.loads(json.dumps(dump)))
    assert len(rows) == 3
    by_name = {(row[0], row[1]): row[3] for row in rows}
    assert "no samples" in by_name[("client", "latency_ms")]
    assert "no samples" in by_name[("r1", "depth")]
    assert by_name[("r1", "ops")] == "total=0"


def test_sampled_histogram_dump_keeps_stats():
    env = Environment()
    registry = MetricsRegistry()
    registry.bind(env)
    series = registry.histogram("client", "latency_ms")
    for value in (1.0, 2.0, 3.0):
        series.record(value)
    entry = registry.dump()["histograms"][0]
    assert entry["n"] == 3
    assert entry["mean"] == pytest.approx(2.0)
    assert entry["p50"] is not None
