"""Unit tests for the flight recorder ring buffer (repro.obs.recorder)."""

import json

import pytest

from repro.obs import FlightRecorder, validate_file


def _event(seq, kind="net.heal", **fields):
    event = {"ts": float(seq), "seq": seq, "kind": kind,
             "cat": kind.partition(".")[0]}
    event.update(fields)
    return event


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_ring_bound_evicts_oldest():
    recorder = FlightRecorder(capacity=3)
    for seq in range(5):
        recorder.record(_event(seq))
    assert len(recorder) == 3
    assert recorder.recorded == 5
    assert recorder.dropped == 2
    assert [e["seq"] for e in recorder.events()] == [2, 3, 4]


def test_clear_empties_buffer():
    recorder = FlightRecorder(capacity=3)
    recorder.record(_event(0))
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.recorded == 1


def test_causal_history_matches_all_id_fields():
    recorder = FlightRecorder()
    recorder.record(_event(0, "client.submit", client="c", stream="S1",
                           msg_id=7, size=8))
    recorder.record(_event(1, "coord.phase2", coordinator="S1/coord",
                           stream="S1", instance=0, msg_ids=[6, 7],
                           positions=[0, 1]))
    recorder.record(_event(2, "control.subscribe", client="c", group="G1",
                           stream="S2", via="S1", request_id=7))
    recorder.record(_event(3, "client.submit", client="c", stream="S1",
                           msg_id=8, size=8))
    history = recorder.causal_history(7)
    assert [e["seq"] for e in history] == [0, 1, 2]


def test_dump_writes_header_then_events(tmp_path):
    recorder = FlightRecorder()
    recorder.record(_event(0, "client.submit", client="c", stream="S1",
                           msg_id=7, size=8))
    recorder.record(_event(1, "replica.deliver", replica="G1/r1", group="G1",
                           stream="S1", position=0, msg_id=7))
    path = str(tmp_path / "dump.jsonl")
    written = recorder.dump(
        path, header={"ts": 2.5, "message": "boom", "msg_id": 7}
    )
    assert written == 2
    lines = [json.loads(l) for l in open(path, encoding="utf-8")]
    assert lines[0]["kind"] == "meta.violation"
    assert lines[0]["seq"] == -1
    assert lines[0]["ts"] == 2.5
    assert lines[0]["message"] == "boom"
    assert lines[0]["msg_id"] == 7
    assert [l["seq"] for l in lines[1:]] == [0, 1]
    # The dump as a whole is schema-valid (what CI uploads on failure).
    assert validate_file(path) == 3


def test_dump_without_header(tmp_path):
    recorder = FlightRecorder()
    recorder.record(_event(0))
    path = str(tmp_path / "dump.jsonl")
    assert recorder.dump(path) == 1
    lines = [json.loads(l) for l in open(path, encoding="utf-8")]
    assert [l["kind"] for l in lines] == ["net.heal"]
