"""Unit tests for the trace event schema (repro.obs.schema)."""

import pytest

from repro.obs import EVENT_SCHEMA, SchemaError, validate_event, validate_file


def _event(kind="client.ack", **fields):
    event = {"ts": 1.0, "seq": 0, "kind": kind, "cat": kind.partition(".")[0]}
    event.update(fields)
    return event


def test_valid_event_passes():
    validate_event(_event(client="c", msg_id=1, latency=0.2))


def test_every_kind_has_a_schema_entry():
    # The catalogue covers all layers: kernel, wire, actors, client,
    # control plane, coordinator, learner, merge, replica, faults.
    prefixes = {kind.partition(".")[0] for kind in EVENT_SCHEMA}
    assert {"sim", "net", "actor", "client", "control", "coord",
            "learner", "merge", "replica", "fault", "invariant",
            "meta"} <= prefixes


def test_missing_envelope_field_rejected():
    event = _event(client="c", msg_id=1, latency=0.2)
    del event["seq"]
    with pytest.raises(SchemaError, match="envelope"):
        validate_event(event)


def test_unknown_kind_rejected():
    with pytest.raises(SchemaError, match="unknown event kind"):
        validate_event(_event(kind="coord.frobnicate"))


def test_audit_and_alert_kinds_are_registered():
    # The online certifier / watchdog plane writes its alert log as
    # ordinary trace events; validate-trace must accept them...
    prefixes = {kind.partition(".")[0] for kind in EVENT_SCHEMA}
    assert {"audit", "alert"} <= prefixes
    validate_event(_event(kind="audit.check", events=10, violations=0))
    validate_event(_event(kind="audit.violation",
                          property="stream-agreement", message="boom"))
    validate_event(_event(kind="alert.raise", detector="quorum_stall",
                          severity="critical", message="stuck"))
    validate_event(_event(kind="alert.clear", detector="quorum_stall"))


def test_audit_kinds_enforce_required_fields():
    # ...while still failing on records missing their required fields
    # (the pin for the watch plane's output discipline).
    with pytest.raises(SchemaError, match="property"):
        validate_event(_event(kind="audit.violation", message="boom"))
    with pytest.raises(SchemaError, match="severity"):
        validate_event(_event(kind="alert.raise", detector="d",
                              message="m"))


def test_missing_required_field_rejected():
    with pytest.raises(SchemaError, match="msg_id"):
        validate_event(_event(client="c", latency=0.2))


def test_non_numeric_ts_rejected():
    event = _event(client="c", msg_id=1, latency=0.2)
    event["ts"] = "soon"
    with pytest.raises(SchemaError, match="ts"):
        validate_event(event)


def test_validate_file_counts_events():
    lines = [
        '{"ts":0.0,"seq":0,"kind":"client.submit","cat":"client",'
        '"client":"c","stream":"S1","msg_id":1,"size":8}',
        '{"ts":0.1,"seq":1,"kind":"client.ack","cat":"client",'
        '"client":"c","msg_id":1,"latency":0.1}',
        "",   # blank lines are skipped
    ]
    assert validate_file(lines) == 2


def test_validate_file_rejects_seq_regression():
    lines = [
        '{"ts":0.0,"seq":5,"kind":"net.heal","cat":"net"}',
        '{"ts":0.1,"seq":5,"kind":"net.heal","cat":"net"}',
    ]
    with pytest.raises(SchemaError, match="monotonically"):
        validate_file(lines)


def test_validate_file_accepts_flight_dump_header():
    # A flight-recorder dump leads with a seq=-1 meta.violation line;
    # the monotonicity check must start from it, not reject it.
    lines = [
        '{"ts":1.0,"seq":-1,"kind":"meta.violation","cat":"meta",'
        '"message":"boom"}',
        '{"ts":0.0,"seq":0,"kind":"net.heal","cat":"net"}',
        '{"ts":0.5,"seq":3,"kind":"net.heal","cat":"net"}',
    ]
    assert validate_file(lines) == 3


def test_validate_file_rejects_bad_json_with_line_number():
    with pytest.raises(SchemaError, match="line 1"):
        validate_file(["{nope"])


def test_validate_file_rejects_empty_trace():
    with pytest.raises(SchemaError, match="no events"):
        validate_file([])


def test_validate_file_reads_paths(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"ts":0.0,"seq":0,"kind":"fault.inject","cat":"fault",'
        '"action":"crash r1"}\n'
    )
    assert validate_file(str(path)) == 1
