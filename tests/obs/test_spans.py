"""Unit tests for lifecycle correlation (repro.obs.spans).

Feeds hand-written event sequences through :class:`LifecycleIndex` and
checks the reconstructed per-message spans and per-stage latencies.
"""

import json

import pytest

from repro.obs import STAGES, FlightRecorder, LifecycleIndex


def _seq(events):
    """Attach envelope fields to bare (ts, kind, fields) triples."""
    out = []
    for seq, (ts, kind, fields) in enumerate(events):
        event = {"ts": ts, "seq": seq, "kind": kind,
                 "cat": kind.partition(".")[0]}
        event.update(fields)
        out.append(event)
    return out


FULL_LIFE = _seq([
    (0.0, "client.submit",
     dict(client="c", stream="S1", msg_id=1, size=32)),
    (0.1, "coord.propose",
     dict(coordinator="S1/coord", stream="S1", type="AppValue", msg_id=1)),
    (0.3, "coord.phase2",
     dict(coordinator="S1/coord", stream="S1", instance=4,
          msg_ids=[1], positions=[9])),
    (0.6, "coord.decide",
     dict(coordinator="S1/coord", stream="S1", instance=4, positions=[9])),
    (0.8, "learner.learned",
     dict(replica="G1/r1", stream="S1", instance=4, msg_ids=[1],
          positions=[9])),
    (0.9, "learner.learned",
     dict(replica="G1/r2", stream="S1", instance=4, msg_ids=[1],
          positions=[9])),
    (1.0, "replica.deliver",
     dict(replica="G1/r1", group="G1", stream="S1", position=9, msg_id=1)),
    (1.2, "replica.deliver",
     dict(replica="G1/r2", group="G1", stream="S1", position=9, msg_id=1)),
    (1.3, "client.ack", dict(client="c", msg_id=1, latency=1.3)),
])


def test_full_lifecycle_reconstructed():
    index = LifecycleIndex().consume_all(FULL_LIFE)
    assert set(index.messages) == {1}
    m = index.messages[1]
    assert m.complete and m.delivered
    assert m.stream == "S1"
    assert m.instance == 4
    assert m.position == 9
    assert m.learned_at == {"G1/r1": 0.8, "G1/r2": 0.9}
    assert m.delivered_at == {"G1/r1": 1.0, "G1/r2": 1.2}
    assert index.coverage() == (1, 1)


def test_stage_latencies_use_first_learn_and_deliver():
    m = LifecycleIndex().consume_all(FULL_LIFE).messages[1]
    stages = m.stage_latencies()
    assert stages["submit->propose"] == pytest.approx(0.1)
    assert stages["propose->phase2"] == pytest.approx(0.2)
    assert stages["phase2->decide"] == pytest.approx(0.3)
    assert stages["decide->learn"] == pytest.approx(0.2)
    assert stages["learn->deliver"] == pytest.approx(0.2)
    assert stages["submit->deliver"] == pytest.approx(1.0)
    assert stages["submit->ack"] == pytest.approx(1.3)
    assert set(stages) == set(STAGES)


def test_stage_samples_cover_delivered_messages_only():
    events = FULL_LIFE + _seq([
        (2.0, "client.submit",
         dict(client="c", stream="S1", msg_id=2, size=32)),
    ])
    index = LifecycleIndex().consume_all(events)
    samples = index.stage_samples()
    assert len(samples["submit->deliver"]) == 1
    assert index.coverage() == (1, 1)
    assert len(index.delivered_messages()) == 1
    assert len(index.messages) == 2


def test_retry_keeps_first_submission_time():
    events = _seq([
        (0.0, "client.submit", dict(client="c", stream="S1", msg_id=3, size=8)),
        (2.0, "client.submit", dict(client="c", stream="S1", msg_id=3, size=8)),
    ])
    index = LifecycleIndex().consume_all(events)
    assert index.messages[3].submitted_at == 0.0


def test_decide_correlates_via_phase2_instance_map():
    # A decide names (stream, instance) only; msg ids come from the
    # phase2 event indexed earlier.
    events = _seq([
        (0.0, "coord.phase2",
         dict(coordinator="S1/coord", stream="S1", instance=0,
              msg_ids=[10, 11], positions=[0, 1])),
        (0.2, "coord.decide",
         dict(coordinator="S1/coord", stream="S1", instance=0,
              positions=[0, 1])),
    ])
    index = LifecycleIndex().consume_all(events)
    assert index.messages[10].decided_at == 0.2
    assert index.messages[11].decided_at == 0.2


def test_subscription_timeline_switch_duration():
    events = _seq([
        (1.0, "control.subscribe",
         dict(client="c", group="G1", stream="S2", via="S1", request_id=42)),
        (1.2, "merge.subscribe.begin",
         dict(replica="G1/r1", group="G1", stream="S2", request_id=42)),
        (1.5, "merge.subscribe.commit",
         dict(replica="G1/r1", group="G1", stream="S2", request_id=42,
              merge_point=17, waited=0.3)),
        (1.9, "merge.subscribe.commit",
         dict(replica="G1/r2", group="G1", stream="S2", request_id=42,
              merge_point=17, waited=0.7)),
    ])
    index = LifecycleIndex().consume_all(events)
    timeline = index.subscriptions[42]
    assert timeline.kind == "subscribe"
    assert timeline.group == "G1" and timeline.stream == "S2"
    assert timeline.merge_points == {"G1/r1": 17, "G1/r2": 17}
    assert timeline.switch_duration == pytest.approx(0.9)


def test_unsubscribe_timeline():
    events = _seq([
        (1.0, "control.unsubscribe",
         dict(client="c", group="G1", stream="S1", request_id=5)),
        (1.4, "merge.unsubscribe",
         dict(replica="G1/r1", group="G1", stream="S1", request_id=5)),
    ])
    timeline = LifecycleIndex().consume_all(events).subscriptions[5]
    assert timeline.kind == "unsubscribe"
    assert timeline.switch_duration == pytest.approx(0.4)


def test_from_jsonl_and_from_recorder_agree(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        "\n".join(json.dumps(e) for e in FULL_LIFE) + "\n", encoding="utf-8"
    )
    from_file = LifecycleIndex.from_jsonl(str(path))
    recorder = FlightRecorder()
    for event in FULL_LIFE:
        recorder.record(event)
    from_ring = LifecycleIndex.from_recorder(recorder)
    assert from_file.coverage() == from_ring.coverage() == (1, 1)
    assert from_file.messages[1].stage_latencies() == \
        from_ring.messages[1].stage_latencies()


def test_stage_latencies_clamp_skewed_boundaries():
    # A merged multi-node trace can stamp a learn *before* its decide;
    # the per-stage view clamps at zero rather than going negative.
    events = _seq([
        (0.0, "client.submit",
         dict(client="c", stream="S1", msg_id=8, size=8)),
        (0.1, "coord.phase2",
         dict(coordinator="S1/coord", stream="S1", instance=1,
              msg_ids=[8], positions=[0])),
        (0.25, "learner.learned",
         dict(replica="G1/r1", stream="S1", instance=1, msg_ids=[8],
              positions=[0])),
        (0.3, "coord.decide",
         dict(coordinator="S1/coord", stream="S1", instance=1,
              positions=[0])),
        (0.4, "replica.deliver",
         dict(replica="G1/r1", group="G1", stream="S1", position=0,
              msg_id=8)),
    ])
    index = LifecycleIndex().consume_all(events)
    stages = index.messages[8].stage_latencies()
    assert stages["decide->learn"] == 0.0
    assert all(v >= 0.0 for v in stages.values() if v is not None)
    samples = index.stage_samples()
    assert all(v >= 0.0 for vs in samples.values() for v in vs)
