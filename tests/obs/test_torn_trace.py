"""Torn traces and clock estimation: what kill -9 leaves behind.

A worker killed with SIGKILL dies with its trace sink's write buffer
in an arbitrary state: the file legitimately ends in half a JSON line.
The merge pipeline must salvage every complete event before the tear
instead of crashing -- strict reads stay strict (a torn line is a real
error for anything but the merge tool).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.merge import merge_files, read_trace, trace_offsets
from repro.runtime.telemetry import estimate_offset


def _lines(node: str, count: int = 3) -> list[str]:
    events = [
        {"ts": 0.0, "kind": "meta.node", "cat": "meta", "node": node},
        {"ts": 0.0, "kind": "meta.clock", "cat": "meta", "node": node,
         "ref": "n1", "offset": 0.25 if node != "n1" else 0.0, "rtt": 0.001},
    ]
    events += [
        {"ts": 0.1 * i, "kind": "client.submit", "cat": "client",
         "node": node, "msg_id": i}
        for i in range(1, count + 1)
    ]
    return [json.dumps(event) for event in events]


def test_read_trace_strict_raises_on_torn_tail():
    torn = "\n".join(_lines("n1")) + '\n{"ts": 0.9, "kind": "client.su'
    with pytest.raises(json.JSONDecodeError):
        read_trace(io.StringIO(torn))


def test_read_trace_skip_malformed_salvages_complete_events():
    complete = _lines("n1")
    torn = "\n".join(complete) + '\n{"ts": 0.9, "kind": "client.su'
    events = read_trace(io.StringIO(torn), skip_malformed=True)
    assert len(events) == len(complete)
    assert events[-1]["msg_id"] == 3
    # Torn tails that still parse as JSON scalars are not events either.
    weird = "\n".join(complete) + "\n42\n"
    assert len(read_trace(io.StringIO(weird), skip_malformed=True)) == len(
        complete
    )


def test_merge_files_tolerates_killed_nodes_trace(tmp_path):
    healthy = tmp_path / "n1.trace.jsonl"
    healthy.write_text("\n".join(_lines("n1")) + "\n", encoding="utf-8")
    killed = tmp_path / "n2.trace.jsonl"
    # The kill -9 case: a flushed prefix, then the tear mid-line.
    killed.write_text(
        "\n".join(_lines("n2")) + '\n{"ts": 0.35, "kind": "replica.del',
        encoding="utf-8",
    )
    out = tmp_path / "merged.trace.jsonl"
    merged = merge_files([str(healthy), str(killed)], out=str(out))
    nodes = {event.get("node") for event in merged}
    assert {"n1", "n2"} <= nodes
    # Every complete n2 event survived; the torn one is gone.
    n2_events = [e for e in merged if e.get("node") == "n2"]
    assert len(n2_events) == len(_lines("n2"))
    assert all(e.get("kind") != "replica.del" for e in n2_events)
    # The killed node's surviving meta.clock still aligned its domain:
    # its events were shifted back by the recorded +0.25 s offset.
    submits = {
        (e["node"], e["msg_id"]): e["ts"]
        for e in merged if e["kind"] == "client.submit"
    }
    assert submits[("n2", 1)] == pytest.approx(
        submits[("n1", 1)] - 0.25, abs=1e-9
    )
    # And the output file is itself a clean, strict-readable trace.
    assert len(read_trace(str(out))) == len(merged)


def test_trace_offsets_last_mark_wins():
    events = _lines("n2")
    events.append(json.dumps(
        {"ts": 2.0, "kind": "meta.clock", "cat": "meta", "node": "n2",
         "ref": "n1", "offset": 0.65, "rtt": 0.001}
    ))
    traces = {"n2": read_trace(io.StringIO("\n".join(events)))}
    assert trace_offsets(traces)["n2"] == pytest.approx(0.65)


def test_estimate_offset_picks_min_rtt_sample():
    # Three round trips; the middle one has the least queueing noise.
    samples = [
        (10.0, 15.5, 10.4),    # rtt 0.4
        (11.0, 15.3 + 1.05, 11.1),   # rtt 0.1 -> offset vs midpoint
        (12.0, 17.8, 12.6),    # rtt 0.6
    ]
    offset, rtt = estimate_offset(samples)
    assert rtt == pytest.approx(0.1)
    assert offset == pytest.approx(15.3 + 1.05 - 11.05)


def test_estimate_offset_requires_samples():
    with pytest.raises(ValueError):
        estimate_offset([])
