"""Unit tests for the trace event bus (repro.obs.trace)."""

import json

from repro.obs import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    JsonlSink,
    ListSink,
    Tracer,
    current_tracer,
    install,
    installed,
    uninstall,
)
from repro.sim.core import Environment


def test_emit_builds_envelope_and_sequences():
    sink = ListSink()
    tracer = Tracer(sinks=[sink])
    tracer.emit("client.submit", 0.5, client="c", stream="S1", msg_id=1, size=8)
    tracer.emit("client.ack", 0.7, client="c", msg_id=1, latency=0.2)
    assert [e["seq"] for e in sink.events] == [0, 1]
    first = sink.events[0]
    assert first["ts"] == 0.5
    assert first["kind"] == "client.submit"
    assert first["cat"] == "client"
    assert first["msg_id"] == 1


def test_category_defaults_to_kind_prefix_and_cat_overrides():
    sink = ListSink()
    tracer = Tracer(sinks=[sink], categories=ALL_CATEGORIES)
    tracer.emit("net.partition", 1.0, cat="fault", side_a=["a"], side_b=["b"])
    assert sink.events[0]["cat"] == "fault"
    tracer.emit("net.heal", 2.0)
    assert sink.events[1]["cat"] == "net"


def test_noisy_categories_are_opt_in():
    sink = ListSink()
    tracer = Tracer(sinks=[sink])   # DEFAULT_CATEGORIES
    tracer.emit("net.send", 0.0, src="a", dst="b", type="X", size=1)
    tracer.emit("sim.process", 0.0)
    tracer.emit("actor.dispatch", 0.0, cat="dispatch", name="a", src="b", type="X")
    assert sink.events == []
    tracer.emit("replica.deliver", 0.0, replica="r", group="G", stream="S",
                position=0, msg_id=1)
    assert len(sink.events) == 1
    assert not tracer.wants_net and not tracer.wants_sim
    all_tracer = Tracer(categories=ALL_CATEGORIES)
    assert all_tracer.wants_net and all_tracer.wants_sim and all_tracer.wants_dispatch


def test_wants_matches_category_set():
    tracer = Tracer(categories={"coord", "net"})
    assert tracer.wants("coord")
    assert tracer.wants("net")
    assert not tracer.wants("merge")
    assert tracer.wants_net


def test_plain_callable_accepted_as_sink():
    seen = []
    tracer = Tracer(sinks=[seen.append])
    tracer.emit("client.timeout", 1.0, client="c", stream="S1", msg_id=3)
    assert seen[0]["kind"] == "client.timeout"


def test_dropped_events_do_not_consume_sequence_numbers():
    sink = ListSink()
    tracer = Tracer(sinks=[sink])
    tracer.emit("net.send", 0.0, src="a", dst="b", type="X", size=1)  # filtered
    tracer.emit("client.ack", 0.0, client="c", msg_id=1, latency=0.1)
    assert sink.events[0]["seq"] == 0
    assert tracer.emitted == 1


def test_jsonl_sink_roundtrip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    sink = JsonlSink(path)
    tracer = Tracer(sinks=[sink])
    tracer.emit("client.submit", 0.1, client="c", stream="S1", msg_id=7, size=32)
    tracer.close()
    assert sink.written == 1
    lines = [json.loads(l) for l in open(path, encoding="utf-8")]
    assert lines == [{"ts": 0.1, "seq": 0, "kind": "client.submit",
                      "cat": "client", "client": "c", "stream": "S1",
                      "msg_id": 7, "size": 32}]


def test_install_slot_and_environment_adoption():
    assert current_tracer() is None
    tracer = Tracer()
    install(tracer)
    try:
        env = Environment()
        assert env.tracer is tracer
    finally:
        uninstall()
    assert current_tracer() is None
    # Environments built after uninstall see no tracer: the slot is
    # captured at construction, not consulted per event.
    assert Environment().tracer is None


def test_installed_context_manager_restores():
    tracer = Tracer()
    with installed(tracer) as active:
        assert active is tracer
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_default_categories_exclude_firehoses():
    assert DEFAULT_CATEGORIES < ALL_CATEGORIES
    assert {"net", "sim", "dispatch"} == ALL_CATEGORIES - DEFAULT_CATEGORIES


def test_close_closes_sinks(tmp_path):
    sink = JsonlSink(str(tmp_path / "t.jsonl"))
    tracer = Tracer(sinks=[sink])
    tracer.close()
    assert sink._file.closed
    tracer.close()   # idempotent


def test_node_envelope_stamps_every_event():
    sink = ListSink()
    tracer = Tracer(sinks=[sink], node="n2", clock="wall")
    tracer.emit("client.submit", 1.0, client="c", stream="s1",
                msg_id=1, size=64)
    assert tracer.node == "n2" and tracer.clock == "wall"
    assert sink.events[0]["node"] == "n2"


def test_sim_tracer_events_unchanged_without_node():
    # node=None (the sim default) must leave events byte-identical to
    # the pre-node tracer: no "node" key at all.
    sink = ListSink()
    tracer = Tracer(sinks=[sink])
    tracer.emit("client.submit", 1.0, client="c", stream="s1",
                msg_id=1, size=64)
    assert tracer.node is None and tracer.clock == "virtual"
    assert "node" not in sink.events[0]
