"""Watchdog plane unit tests (repro.obs.watch) and the `repro watch`
CLI exit-code contract.

Each detector is fed synthetic samples to prove it fires on its
condition and clears on recovery; the Watchdog's transition diffing,
health scoring and trace emission are checked against the event
schema; TraceWatch is driven end to end over a growing run directory
with the alert log validated like any other trace.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import validate_file
from repro.obs.watch import (
    Alert,
    BackpressureDetector,
    ClockDriftDetector,
    DeliveryCollapseDetector,
    QuorumStallDetector,
    ReconfigStallDetector,
    TraceWatch,
    UnreachableDetector,
    Watchdog,
    WatermarkStallDetector,
    sample_from_health,
)


def _sample(at, **fields):
    return {"at": at, "streams": {}, **fields}


# -- detectors ---------------------------------------------------------

def test_watermark_stall_fires_and_clears():
    detector = WatermarkStallDetector(stall_after=2.0)
    stuck = {"s1": {"low": 5, "high": 9}}
    assert detector.observe(_sample(0.0, streams=stuck)) == []
    assert detector.observe(_sample(1.0, streams=stuck)) == []
    alerts = detector.observe(_sample(3.0, streams=stuck))
    assert [a.key for a in alerts] == ["s1"]
    assert alerts[0].severity == "warning"
    # The low watermark moving again clears it.
    moved = {"s1": {"low": 6, "high": 9}}
    assert detector.observe(_sample(4.0, streams=moved)) == []


def test_watermark_stall_quiet_when_low_equals_high():
    # End of a run: deliveries stop with everyone caught up -- no gap,
    # no alert (the baseline zero-false-positive requirement).
    detector = WatermarkStallDetector(stall_after=1.0)
    done = {"s1": {"low": 9, "high": 9}}
    for at in (0.0, 2.0, 4.0, 8.0):
        assert detector.observe(_sample(at, streams=done)) == []


def test_quorum_stall_needs_pending_proposals():
    detector = QuorumStallDetector(stall_after=2.0)
    idle = {"s1": {"pending": 0, "pending_age": None}}
    assert detector.observe(_sample(10.0, streams=idle)) == []
    stalled = {"s1": {"pending": 3, "pending_age": 2.5}}
    alerts = detector.observe(_sample(10.0, streams=stalled))
    assert [a.severity for a in alerts] == ["critical"]


def test_clock_drift_fires_on_movement_not_static_domains():
    detector = ClockDriftDetector(bound=0.2)
    # The first estimate defines the node's clock domain: a large but
    # *measured* offset is compensated by the merge plane, not drift
    # (a multi-process worker that booted 5s late is healthy).
    assert detector.observe(
        _sample(1.0, clock_offsets={"n2": 5.0}, clock_rtts={"n2": 0.01})
    ) == []
    # Movement within bound + RTT slack stays quiet...
    sample = _sample(2.0, clock_offsets={"n2": 5.3},
                     clock_rtts={"n2": 0.25})
    assert detector.observe(sample) == []       # drift 0.3 < 0.2 + 0.25
    # ...but the estimate walking away from its baseline is drift.
    sample = _sample(3.0, clock_offsets={"n2": 5.5},
                     clock_rtts={"n2": 0.01})
    alerts = detector.observe(sample)
    assert [a.key for a in alerts] == ["n2"]
    assert "drifted" in alerts[0].message


def test_backpressure_uses_sample_capacity():
    detector = BackpressureDetector(high_water=0.8, capacity=1024)
    sample = _sample(1.0, queue_depths={"n2": 900}, queue_capacity=1000)
    assert [a.key for a in detector.observe(sample)] == ["n2"]
    calm = _sample(2.0, queue_depths={"n2": 10}, queue_capacity=1000)
    assert detector.observe(calm) == []


def test_delivery_collapse_fires_only_while_submissions_continue():
    detector = DeliveryCollapseDetector(window=2.0, ratio=0.25,
                                        min_rate=50.0)
    # Healthy window: 100/s delivered, then the datapath dies while the
    # client keeps submitting.
    for i in range(5):
        at = 0.5 * i
        assert detector.observe(_sample(
            at, delivered=int(100 * at), submitted=int(100 * at)
        )) == []
    alerts = detector.observe(_sample(4.0, delivered=210, submitted=400))
    assert [a.severity for a in alerts] == ["critical"]


def test_delivery_collapse_quiet_at_end_of_run():
    detector = DeliveryCollapseDetector(window=2.0, min_rate=50.0)
    # Delivered AND submitted both stop: workload over, not a collapse.
    for at, total in ((0.0, 0), (1.0, 100), (2.0, 200), (3.0, 205),
                      (4.0, 205), (5.0, 205)):
        assert detector.observe(_sample(
            at, delivered=total, submitted=total
        )) == []


def test_reconfig_stall_and_unreachable():
    assert [a.key for a in ReconfigStallDetector(bound=5.0).observe(
        _sample(9.0, pending_reconfigs={"7": 6.0})
    )] == ["7"]
    assert [a.node for a in UnreachableDetector().observe(
        _sample(1.0, unreachable=("n3",))
    )] == ["n3"]


# -- Watchdog ----------------------------------------------------------

class _OnOff:
    name = "onoff"

    def __init__(self):
        self.firing = False

    def observe(self, sample):
        if not self.firing:
            return []
        return [Alert(detector=self.name, severity="critical",
                      message="on", at=sample["at"], key="k")]


def test_watchdog_diffs_transitions_and_scores_health():
    detector = _OnOff()
    watchdog = Watchdog([detector])
    assert watchdog.observe(_sample(0.0)) == ([], [])
    assert watchdog.health_score() == 100
    detector.firing = True
    raised, cleared = watchdog.observe(_sample(1.0))
    assert len(raised) == 1 and cleared == []
    # Still firing: no new raise.
    assert watchdog.observe(_sample(2.0)) == ([], [])
    assert watchdog.health_score() == 60        # one critical: -40
    detector.firing = False
    raised, cleared = watchdog.observe(_sample(3.0))
    assert raised == [] and len(cleared) == 1
    assert watchdog.health_score() == 100
    assert watchdog.raised_total == 1
    assert len(watchdog.history) == 1


def test_watchdog_emits_schema_valid_trace_events():
    from repro.obs import ListSink, Tracer

    sink = ListSink()
    detector = _OnOff()
    watchdog = Watchdog([detector], tracer=Tracer(sinks=[sink]))
    detector.firing = True
    watchdog.observe(_sample(1.0))
    detector.firing = False
    watchdog.observe(_sample(2.0))
    kinds = [event["kind"] for event in sink.events]
    assert kinds == ["alert.raise", "alert.clear"]
    from repro.obs import validate_event
    for event in sink.events:
        validate_event(event)


# -- sample_from_health ------------------------------------------------

def test_sample_from_health_distils_watermarks_and_queues():
    snapshot = {
        "node": "n1", "now": 12.5,
        "streams": {"s1": {"positions_decided": 40, "leading": True}},
        "replicas": {
            "r1": {"delivered": 70, "positions": {"s1": 38}},
            "r2": {"delivered": 68, "positions": {"s1": 36}},
        },
        "transport": {"queue_depths": {"acc:s1:1": 7},
                      "queue_capacity": 1024},
        "client": {"submitted": 80},
    }
    sample = sample_from_health(snapshot)
    assert sample["at"] == 12.5 and sample["node"] == "n1"
    assert sample["streams"]["s1"] == {"high": 40, "low": 36}
    assert sample["delivered"] == 138 and sample["submitted"] == 80
    assert sample["queue_depths"] == {"acc:s1:1": 7}
    assert sample["queue_capacity"] == 1024


# -- TraceWatch end to end ---------------------------------------------

def _write(path, events, mode="w"):
    with open(path, mode, encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def _deliver(node, replica, stream, position, msg_id, ts=None):
    return {
        "ts": ts if ts is not None else 0.1 * position, "seq": position,
        "kind": "replica.deliver", "cat": "replica", "node": node,
        "replica": replica, "group": "g1", "stream": stream,
        "position": position, "msg_id": msg_id,
    }


def test_trace_watch_follows_appends_and_certifies(tmp_path):
    trace = str(tmp_path / "n1.trace.jsonl")
    out = str(tmp_path / "alerts.jsonl")
    _write(trace, [_deliver("n1", "r1", "s1", 1, 1)])
    watch = TraceWatch(directory=str(tmp_path), out=out)
    tick = watch.step()
    assert tick["events"] == 1 and tick["violations"] == []
    # The file grows between steps -- incremental, not re-read.
    _write(trace, [_deliver("n1", "r1", "s1", 2, 2)], mode="a")
    assert watch.step()["events"] == 1
    summary = watch.close()
    assert summary["ok"] and summary["events"] == 2
    assert summary["health_score"] == 100 and summary["alerts"] == []
    # The alert log is a schema-valid trace (closing audit.check).
    assert validate_file(out) >= 1


def test_trace_watch_reports_injected_violation(tmp_path):
    _write(str(tmp_path / "n1.trace.jsonl"),
           [_deliver("n1", "r1", "s1", 1, 10)])
    _write(str(tmp_path / "n2.trace.jsonl"),
           [_deliver("n2", "r2", "s1", 1, 99)])
    out = str(tmp_path / "alerts.jsonl")
    watch = TraceWatch(directory=str(tmp_path), out=out)
    watch.drain()
    summary = watch.close()
    assert not summary["ok"]
    assert {v["property"] for v in summary["violations"]} == {
        "stream-agreement", "prefix-agreement"
    }
    kinds = [json.loads(line)["kind"] for line in open(out)]
    assert kinds.count("audit.violation") == 2
    assert validate_file(out) == len(kinds)


def test_trace_watch_raises_watermark_stall_then_summarises(tmp_path):
    trace = str(tmp_path / "n1.trace.jsonl")
    _write(trace, [_deliver("n1", "r1", "s1", 1, 1, ts=0.0),
                   _deliver("n1", "r2", "s1", 1, 1, ts=0.0)])
    watch = TraceWatch(directory=str(tmp_path),
                       out=str(tmp_path / "alerts.jsonl"),
                       stall_after=1.0)
    watch.step()
    # r1 advances, r2 freezes: the low watermark stalls at 1 while the
    # high reaches 4 over >1s of trace time.
    _write(trace, [_deliver("n1", "r1", "s1", p, p, ts=1.0 * p)
                   for p in (2, 3, 4)], mode="a")
    watch.step()
    watch.step()
    summary = watch.close()
    assert summary["ok"]                 # a stall is an anomaly, not unsafe
    assert any(a["detector"] == "watermark_stall"
               for a in summary["alerts"])


# -- the `repro watch` CLI ---------------------------------------------

def test_cli_watch_exit_codes(tmp_path, capsys):
    from repro.cli import main

    clean = tmp_path / "clean"
    clean.mkdir()
    _write(str(clean / "n1.trace.jsonl"),
           [_deliver("n1", "r1", "s1", p, p) for p in (1, 2)])
    assert main(["watch", str(clean), "--fail-on-alert"]) == 0
    out = capsys.readouterr().out
    assert "certified: no safety violations" in out

    bad = tmp_path / "bad"
    bad.mkdir()
    _write(str(bad / "n1.trace.jsonl"), [_deliver("n1", "r1", "s1", 1, 1)])
    _write(str(bad / "n2.trace.jsonl"), [_deliver("n2", "r2", "s1", 1, 9)])
    assert main(["watch", str(bad)]) == 1

    # --fail-on-alert turns a (safe) anomaly into exit code 2.
    stalled = tmp_path / "stalled"
    stalled.mkdir()
    _write(str(stalled / "n1.trace.jsonl"),
           [_deliver("n1", "r1", "s1", 1, 1, ts=0.0),
            _deliver("n1", "r2", "s1", 1, 1, ts=0.0)]
           + [_deliver("n1", "r1", "s1", p, p, ts=2.0 * p)
              for p in (2, 3)])
    assert main(["watch", str(stalled), "--stall-after", "1.0"]) == 0
    assert main(["watch", str(stalled), "--stall-after", "1.0",
                 "--fail-on-alert"]) == 2
    capsys.readouterr()


def test_cli_watch_single_trace_file_and_alert_log(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "n1.trace.jsonl"
    _write(str(trace), [_deliver("n1", "r1", "s1", p, p) for p in (1, 2)])
    log = tmp_path / "alerts.jsonl"
    assert main(["watch", str(trace), "--out", str(log)]) == 0
    assert validate_file(str(log)) >= 1
    assert main(["watch", str(tmp_path / "nope")]) == 2
    capsys.readouterr()
