"""Regression: windowed instruments must evict at *read* time.

Eviction used to run only inside ``record()``, so a windowed histogram
that went quiet kept reporting quantiles computed from samples far
older than its retention window -- the autoscaler would see a breach
that ended seconds ago and keep scaling.  These tests pin the fix: a
read after the window has fully aged out sees no samples, with no
intervening ``record()`` call needed.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.monitor import Counter, Series


class FakeClock:
    """The instruments only need ``.now`` (reads) and ``._now`` (record)."""

    def __init__(self):
        self.now = 0.0

    @property
    def _now(self):
        return self.now


def test_series_values_age_out_without_a_new_record():
    clock = FakeClock()
    series = Series(clock, window=1.0)
    series.record(10.0)
    clock.now = 0.5
    series.record(20.0)
    assert series.values == (10.0, 20.0)
    # Silence. The window slides past both samples.
    clock.now = 2.0
    assert series.values == ()
    assert len(series) == 0
    with pytest.raises(ValueError):
        series.mean()


def test_series_partial_ageing_keeps_only_fresh_samples():
    clock = FakeClock()
    series = Series(clock, window=1.0)
    series.record(10.0)
    clock.now = 0.9
    series.record(20.0)
    clock.now = 1.5        # sample at t=0 expired, t=0.9 retained
    assert series.values == (20.0,)
    assert series.percentile(99) == 20.0


def test_counter_rate_goes_to_zero_without_a_new_record():
    clock = FakeClock()
    counter = Counter(clock, window=1.0)
    for _ in range(10):
        counter.record()
    assert counter.rate_between(0.0, 1.0) == 10.0
    clock.now = 5.0
    # The lifetime total survives; the windowed rate must not.
    assert counter.total == 10.0
    assert counter.rate_between(4.0, 5.0) == 0.0
    assert len(counter) == 0


def test_registry_histogram_quantile_is_never_stale():
    clock = FakeClock()
    registry = MetricsRegistry(env=clock, window=1.0)
    histogram = registry.histogram("S1/coordinator", "decide_latency_ms")
    for value in (5.0, 6.0, 7.0):
        histogram.record(value)
    assert histogram.percentile(99) == 7.0
    clock.now = 3.0
    # This is the autoscaler's read path: a quiet stream must report
    # "no signal", not last epoch's latencies.
    assert histogram.values == ()
    with pytest.raises(ValueError):
        histogram.percentile(99)


def test_unwindowed_instruments_keep_everything():
    clock = FakeClock()
    series = Series(clock)        # window=None: the golden-digest path
    series.record(1.0)
    clock.now = 1e9
    assert series.values == (1.0,)
