"""Unit tests for the sans-io acceptor state machine."""

import pytest

from repro.paxos.acceptor import AcceptorCore
from repro.paxos.messages import (
    Decision,
    Phase1a,
    Phase2a,
    RecoverRequest,
    RingAccept,
    Trim,
)
from repro.paxos.types import AppValue, Batch


def batch(tag):
    return Batch(tokens=(AppValue(payload=tag),))


def make_acceptor(name="a1", ring=("a1",)):
    return AcceptorCore(name, "S1", ring=ring)


def test_phase1a_promise_and_report_accepted():
    acceptor = make_acceptor()
    value = batch("x")
    acceptor.log.accept(3, 5, value)
    effects = acceptor.on_phase1a(Phase1a(stream="S1", ballot=7, from_instance=0), "c")
    assert len(effects) == 1
    dst, reply = effects[0]
    assert dst == "c"
    assert reply.ballot == 7
    assert reply.accepted == ((3, 5, value),)
    assert acceptor.promised == 7


def test_phase1a_stale_ballot_ignored():
    acceptor = make_acceptor()
    acceptor.on_phase1a(Phase1a(stream="S1", ballot=7, from_instance=0), "c")
    effects = acceptor.on_phase1a(Phase1a(stream="S1", ballot=5, from_instance=0), "c2")
    assert effects == []
    assert acceptor.promised == 7


def test_phase2a_accept_and_reply():
    acceptor = make_acceptor()
    effects = acceptor.on_phase2a(
        Phase2a(stream="S1", ballot=4, instance=0, batch=batch("v")), "c"
    )
    assert len(effects) == 1
    _dst, reply = effects[0]
    assert reply.instance == 0
    assert reply.acceptor == "a1"
    assert acceptor.log.get(0).vrnd == 4


def test_phase2a_below_promise_rejected():
    acceptor = make_acceptor()
    acceptor.on_phase1a(Phase1a(stream="S1", ballot=9, from_instance=0), "c")
    effects = acceptor.on_phase2a(
        Phase2a(stream="S1", ballot=4, instance=0, batch=batch("v")), "c"
    )
    assert effects == []
    assert acceptor.log.get(0) is None


def test_phase2a_at_promise_level_accepted():
    acceptor = make_acceptor()
    acceptor.on_phase1a(Phase1a(stream="S1", ballot=9, from_instance=0), "c")
    effects = acceptor.on_phase2a(
        Phase2a(stream="S1", ballot=9, instance=0, batch=batch("v")), "c"
    )
    assert len(effects) == 1


def test_ring_accept_middle_forwards_to_next():
    ring = ("a1", "a2", "a3")
    acceptor = AcceptorCore("a2", "S1", ring=ring)
    msg = RingAccept(stream="S1", ballot=0, instance=0, batch=batch("v"), accepted_by=1)
    effects = acceptor.on_ring_accept(msg, "a1")
    assert len(effects) == 1
    dst, forwarded = effects[0]
    assert dst == "a3"
    assert forwarded.accepted_by == 2


def test_ring_accept_last_decides():
    ring = ("a1", "a2", "a3")
    acceptor = AcceptorCore("a3", "S1", ring=ring)
    msg = RingAccept(stream="S1", ballot=0, instance=0, batch=batch("v"), accepted_by=2)
    effects = acceptor.on_ring_accept(msg, "a2")
    assert effects[0][0] == "__decided__"
    assert acceptor.log.is_decided(0)


def test_decision_marks_decided_for_recovery():
    acceptor = make_acceptor()
    value = batch("v")
    acceptor.on_decision(Decision(stream="S1", instance=2, batch=value), "c")
    assert acceptor.log.is_decided(2)
    assert acceptor.log.decided_value(2) == value


def test_recover_request_returns_decided_page():
    acceptor = make_acceptor()
    for i in range(5):
        acceptor.on_decision(Decision(stream="S1", instance=i, batch=batch(i)), "c")
    effects = acceptor.on_recover_request(
        RecoverRequest(stream="S1", from_instance=0), "learner"
    )
    _dst, reply = effects[0]
    assert [i for i, _b in reply.decided] == [0, 1, 2, 3, 4]
    assert reply.highest_decided == 4


def test_recover_request_respects_range():
    acceptor = make_acceptor()
    for i in range(5):
        acceptor.on_decision(Decision(stream="S1", instance=i, batch=batch(i)), "c")
    effects = acceptor.on_recover_request(
        RecoverRequest(stream="S1", from_instance=1, to_instance=3), "learner"
    )
    _dst, reply = effects[0]
    assert [i for i, _b in reply.decided] == [1, 2]


def test_recovery_is_paginated():
    from repro.paxos.acceptor import RECOVERY_PAGE_INSTANCES

    acceptor = make_acceptor()
    n = RECOVERY_PAGE_INSTANCES + 50
    for i in range(n):
        acceptor.on_decision(Decision(stream="S1", instance=i, batch=batch(i)), "c")
    effects = acceptor.on_recover_request(
        RecoverRequest(stream="S1", from_instance=0), "learner"
    )
    _dst, reply = effects[0]
    assert len(reply.decided) == RECOVERY_PAGE_INSTANCES
    assert reply.highest_decided == n - 1


def test_trim_drops_decided_prefix():
    acceptor = make_acceptor()
    for i in range(5):
        acceptor.on_decision(Decision(stream="S1", instance=i, batch=batch(i)), "c")
    acceptor.on_trim(Trim(stream="S1", below=3), "c")
    assert acceptor.log.trimmed_below == 3
    effects = acceptor.on_recover_request(
        RecoverRequest(stream="S1", from_instance=0), "learner"
    )
    _dst, reply = effects[0]
    assert [i for i, _b in reply.decided] == [3, 4]


def test_trim_stops_at_undecided_instance():
    acceptor = make_acceptor()
    acceptor.on_decision(Decision(stream="S1", instance=0, batch=batch(0)), "c")
    acceptor.log.accept(1, 0, batch("pending"))  # accepted but not decided
    acceptor.on_decision(Decision(stream="S1", instance=2, batch=batch(2)), "c")
    acceptor.on_trim(Trim(stream="S1", below=3), "c")
    # Only the decided prefix [0] may go; instance 1 must survive.
    assert acceptor.log.trimmed_below == 1
    assert acceptor.log.get(1) is not None
