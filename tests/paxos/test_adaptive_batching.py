"""Property tests for the load-adaptive batching policy.

The policy drives the live datapath's batch sizing, so its shape is
pinned by properties rather than point examples: the batch target is
monotone in observed queue depth, always bounded by [floor, ceiling],
and decays back to the floor when the queue stays empty.  The sim
backend must be unaffected: adaptive batching is opt-in and the
default ``StreamConfig`` keeps the coordinator on the classic fixed
batch cap (golden digests stay byte-identical -- ``tests/baselines``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paxos import CoordinatorActor, StreamConfig
from repro.paxos.batching import AdaptiveBatchPolicy
from repro.sim import Environment, Network


def _policy(**overrides):
    params = dict(floor=16, ceiling=256, half_pressure=32.0,
                  decay_s=0.25, max_linger_s=0.002)
    params.update(overrides)
    return AdaptiveBatchPolicy(**params)


@given(
    depth_a=st.integers(min_value=0, max_value=100_000),
    depth_b=st.integers(min_value=0, max_value=100_000),
)
def test_target_monotone_in_queue_depth(depth_a, depth_b):
    lo, hi = sorted((depth_a, depth_b))
    p_lo, p_hi = _policy(), _policy()
    p_lo.observe(lo, now=1.0)
    p_hi.observe(hi, now=1.0)
    assert p_lo.target_tokens() <= p_hi.target_tokens()


@given(
    depths=st.lists(
        st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=50
    ),
    dt=st.floats(min_value=0.0, max_value=10.0,
                 allow_nan=False, allow_infinity=False),
)
def test_target_and_linger_always_bounded(depths, dt):
    policy = _policy()
    now = 0.0
    for depth in depths:
        policy.observe(depth, now)
        assert policy.floor <= policy.target_tokens() <= policy.ceiling
        assert 0.0 <= policy.linger_s() <= policy.max_linger_s
        now += dt


@given(depth=st.integers(min_value=1, max_value=1_000_000))
@settings(max_examples=50)
def test_decays_to_floor_when_idle(depth):
    policy = _policy()
    policy.observe(depth, now=0.0)
    assert policy.target_tokens() >= policy.floor
    # 100 decay constants later the level has hit the hard zero clamp:
    # an idle stream is back to the classic floor and zero linger.
    policy.observe(0, now=100 * policy.decay_s)
    assert policy.level(100 * policy.decay_s) == 0.0
    assert policy.target_tokens() == policy.floor
    assert policy.linger_s() == 0.0


def test_peak_hold_raises_instantly_and_holds():
    policy = _policy()
    policy.observe(1000, now=0.0)
    high = policy.target_tokens()
    # A shallow sample at the same instant must not lower the target.
    policy.observe(0, now=0.0)
    assert policy.target_tokens() == high
    # Shortly after, the target has decayed but not collapsed.
    policy.observe(0, now=0.01)
    assert policy.floor < policy.target_tokens() <= high


def test_half_pressure_is_the_midpoint():
    policy = _policy(floor=16, ceiling=256, half_pressure=32.0)
    policy.observe(32, now=0.0)
    assert policy.target_tokens() == 16 + (256 - 16) // 2


def test_from_config_wires_all_knobs():
    config = StreamConfig(
        name="s1",
        acceptors=("s1/a1",),
        adaptive_batching=True,
        batch_max_tokens=8,
        adaptive_batch_ceiling=128,
        adaptive_half_pressure=10.0,
        adaptive_decay_s=0.5,
        adaptive_max_linger_s=0.004,
    )
    policy = AdaptiveBatchPolicy.from_config(config)
    assert policy.floor == 8
    assert policy.ceiling == 128
    assert policy.half_pressure == 10.0
    assert policy.decay_s == 0.5
    assert policy.max_linger_s == 0.004


def test_constructor_rejects_bad_shapes():
    with pytest.raises(ValueError):
        AdaptiveBatchPolicy(floor=0, ceiling=16)
    with pytest.raises(ValueError):
        AdaptiveBatchPolicy(floor=16, ceiling=8)
    with pytest.raises(ValueError):
        AdaptiveBatchPolicy(floor=1, ceiling=2, half_pressure=0.0)
    with pytest.raises(ValueError):
        AdaptiveBatchPolicy(floor=1, ceiling=2, decay_s=-1.0)


def _sim_coordinator(**config_overrides):
    env = Environment()
    net = Network(env)
    config = StreamConfig(
        name="s1", acceptors=("s1/a1",), **config_overrides
    )
    return CoordinatorActor(env, net, config)


def test_sim_default_keeps_adaptive_batching_off():
    # Determinism pin: the default StreamConfig must not grow a batch
    # policy -- the sim's golden digests depend on the classic fixed
    # batch path being byte-identical.
    config = StreamConfig(name="s1", acceptors=("s1/a1",))
    assert config.adaptive_batching is False
    assert _sim_coordinator()._batch_policy is None


def test_coordinator_grows_policy_when_enabled():
    coordinator = _sim_coordinator(adaptive_batching=True)
    assert coordinator._batch_policy is not None
    assert coordinator._batch_policy.floor == coordinator.config.batch_max_tokens
