"""Unit tests for ballot arithmetic and quorums."""

import pytest

from repro.paxos import ballot_for, next_ballot, owner_of, quorum_size


def test_ballots_are_disjoint_between_coordinators():
    seen = set()
    for coordinator in range(3):
        for attempt in range(5):
            ballot = ballot_for(coordinator, attempt, 3)
            assert ballot not in seen
            seen.add(ballot)
            assert owner_of(ballot, 3) == coordinator


def test_next_ballot_is_strictly_greater_and_owned():
    current = ballot_for(1, 4, 3)
    for owner in range(3):
        nxt = next_ballot(current, owner, 3)
        assert nxt > current
        assert owner_of(nxt, 3) == owner


def test_ballot_for_validates_range():
    with pytest.raises(ValueError):
        ballot_for(3, 0, 3)
    with pytest.raises(ValueError):
        ballot_for(0, -1, 3)


def test_quorum_size_majority():
    assert quorum_size(1) == 1
    assert quorum_size(3) == 2
    assert quorum_size(4) == 3
    assert quorum_size(5) == 3


def test_quorum_size_rejects_zero():
    with pytest.raises(ValueError):
        quorum_size(0)


def test_two_quorums_always_intersect():
    for n in range(1, 10):
        q = quorum_size(n)
        assert 2 * q > n
