"""Coordinator takeover: a higher ballot adopts accepted values."""

import pytest

from repro.multicast.stream import StreamDeployment
from repro.paxos import AppValue, CoordinatorActor, StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def test_takeover_preserves_decided_prefix():
    """A second coordinator takes over and does not contradict the
    first one's decisions (it re-proposes the adopted values)."""
    env = Environment()
    net = Network(env, rng=RngRegistry(13), default_link=LinkSpec(latency=0.001))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        ring_mode=False,          # classic quorum mode for this test
        skip_enabled=False,
    )
    deployment = StreamDeployment(env, net, config)
    delivered = []
    deployment.make_learner("learner", lambda i, b: delivered.append((i, b)))
    deployment.start()
    for i in range(10):
        deployment.propose(AppValue(payload=("old", i)))
    env.run(until=0.5)
    first_decisions = list(delivered)
    assert len(first_decisions) > 0

    # The original coordinator dies; a backup claims the stream.
    deployment.coordinator.crash()
    backup = CoordinatorActor(
        env, net,
        StreamConfig(
            name="S1",
            acceptors=config.acceptors,
            coordinator="S1/backup",
            ring_mode=False,
            skip_enabled=False,
        ),
        coordinator_index=1,
        n_coordinators=2,
    )
    backup.ballot = 1   # coordinator 1 of 2 owns odd ballots
    backup.add_learner("learner")
    backup.start()
    env.run(until=1.0)
    assert backup.leading

    for i in range(5):
        backup.propose(AppValue(payload=("new", i)))
    env.run(until=2.0)

    # All old decisions unchanged, new values ordered after them.
    for instance, batch in first_decisions:
        later = dict(delivered)
        assert later[instance] == batch
    payloads = [t.payload for _i, b in sorted(delivered) for t in b.tokens]
    assert payloads[-5:] == [("new", i) for i in range(5)]
    assert payloads.count(("old", 0)) == 1


def test_stale_coordinator_cannot_decide_after_takeover():
    """Once acceptors promised a higher ballot, the old coordinator's
    proposals are rejected."""
    env = Environment()
    net = Network(env, rng=RngRegistry(14), default_link=LinkSpec(latency=0.001))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        ring_mode=False,
        skip_enabled=False,
        retransmit_timeout=10.0,   # no retries: make rejection visible
    )
    deployment = StreamDeployment(env, net, config)
    delivered = []
    deployment.make_learner("learner", lambda i, b: delivered.append((i, b)))
    deployment.start()
    env.run(until=0.2)
    old = deployment.coordinator

    backup = CoordinatorActor(
        env, net,
        StreamConfig(
            name="S1", acceptors=config.acceptors, coordinator="S1/backup",
            ring_mode=False, skip_enabled=False,
        ),
        coordinator_index=1,
        n_coordinators=2,
    )
    backup.ballot = 1001   # far above the old coordinator's ballot
    backup.add_learner("learner")
    backup.start()
    env.run(until=0.5)
    assert backup.leading

    before = len(delivered)
    old.propose(AppValue(payload="stale"))
    env.run(until=1.0)
    stale_delivered = [
        t.payload for _i, b in delivered for t in b.tokens if t.payload == "stale"
    ]
    assert stale_delivered == []
    assert len(delivered) == before
