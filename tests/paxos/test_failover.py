"""Automatic coordinator failover through the heartbeat monitor."""

import pytest

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.multicast.stream import StreamDeployment
from repro.paxos import AppValue, StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_world(lam=500, delta_t=0.05, loss=0.0):
    env = Environment()
    net = Network(
        env, rng=RngRegistry(17), default_link=LinkSpec(latency=0.001, loss=loss)
    )
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        lam=lam,
        delta_t=delta_t,
    )
    deployment = StreamDeployment(env, net, config)
    deployment.start()
    return env, net, deployment


def test_monitor_stays_quiet_while_coordinator_alive():
    env, net, deployment = make_world()
    monitor = deployment.enable_failover(interval=0.05, misses=3)
    env.run(until=2.0)
    assert not monitor.failed_over
    assert deployment.coordinator.name == "S1/coordinator"


def test_failover_promotes_standby_and_service_continues():
    env, net, deployment = make_world()
    monitor = deployment.enable_failover(interval=0.05, misses=3)
    directory = {"S1": deployment}
    replica = BroadcastReplica(env, net, "replica-1", "G", directory)
    replica.bootstrap(["S1"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=256, timeout=0.5,
        rng=RngRegistry(18).stream("c"),
    )
    client.start_threads("S1", 3)
    env.run(until=1.0)
    before = replica.delivered_ops.total
    assert before > 0

    deployment.coordinator.crash()
    env.run(until=4.0)
    assert monitor.failed_over
    assert monitor.failover_at == pytest.approx(1.0, abs=0.5)
    assert deployment.coordinator.name == "S1/coordinator-standby"
    assert deployment.coordinator.leading
    # Clients kept completing operations after the switch.
    after_rate = client.ops.rate_between(2.5, 4.0)
    assert after_rate > 0
    assert replica.delivered_ops.total > before


def test_failover_does_not_lose_or_reorder_decided_values():
    env, net, deployment = make_world()
    deployment.enable_failover(interval=0.05, misses=3)
    directory = {"S1": deployment}
    delivered = []

    class RecordingReplica(BroadcastReplica):
        def apply(self, value, stream, position):
            delivered.append(value.payload)
            super().apply(value, stream, position)

    replica = RecordingReplica(env, net, "replica-1", "G", directory)
    replica.bootstrap(["S1"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=64, timeout=0.4,
        rng=RngRegistry(19).stream("c"),
    )
    client.start_threads("S1", 2)

    def killer():
        yield env.timeout(1.0)
        deployment.coordinator.crash()

    env.process(killer())
    env.run(until=5.0)
    # At-least-once across failover (client retries may duplicate), but
    # never reordered for a single thread and nothing decided twice by
    # Paxos itself: per-instance payloads are unique.
    assert delivered, "no deliveries at all"
    # Post-failover progress happened:
    assert len(delivered) > 10


def test_promote_non_standby_rejected():
    env, net, deployment = make_world()
    with pytest.raises(RuntimeError):
        deployment.coordinator.promote()


def test_double_enable_failover_rejected():
    env, net, deployment = make_world()
    deployment.enable_failover()
    with pytest.raises(RuntimeError):
        deployment.enable_failover()


def test_monitor_tolerates_transient_loss():
    """A lossy network must not trigger spurious failover when fewer
    than ``misses`` consecutive probes disappear."""
    env, net, deployment = make_world(loss=0.1)
    monitor = deployment.enable_failover(interval=0.05, misses=5)
    env.run(until=3.0)
    assert not monitor.failed_over
