"""Unit tests for the failure-detector internals."""

import pytest

from repro.paxos.failover import FailoverMonitor, RingWatchdog
from repro.paxos import CoordinatorActor, StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_net(seed=99):
    env = Environment()
    net = Network(env, rng=RngRegistry(seed), default_link=LinkSpec(latency=0.001))
    return env, net


def make_standby(env, net):
    net.add_host("S1/a1")   # promotion sends Phase 1a here
    config = StreamConfig(
        name="S1", acceptors=("S1/a1",), coordinator="S1/standby"
    )
    standby = CoordinatorActor(
        env, net, config, coordinator_index=1, n_coordinators=2, standby=True
    )
    standby.start()
    return standby


def test_monitor_validates_misses():
    env, net = make_net()
    standby = make_standby(env, net)
    with pytest.raises(ValueError):
        FailoverMonitor(env, net, "m", active="S1/x", standby=standby, misses=0)


def test_monitor_counts_consecutive_misses_only():
    env, net = make_net()
    standby = make_standby(env, net)
    net.add_host("S1/dead")   # exists but never answers
    fired = []
    monitor = FailoverMonitor(
        env, net, "m", active="S1/dead", standby=standby,
        interval=0.1, misses=3, on_failover=lambda: fired.append(env.now),
    )
    monitor.start()
    env.run(until=0.25)
    assert not monitor.failed_over    # only 2 misses so far
    env.run(until=0.45)
    assert monitor.failed_over
    assert fired and fired[0] == pytest.approx(0.3, abs=0.01)


def test_watchdog_validates_misses():
    env, net = make_net()
    with pytest.raises(ValueError):
        RingWatchdog(env, net, "w", targets=["a"], on_suspect=lambda t: None,
                     misses=0)


def test_watchdog_suspects_only_silent_targets():
    env, net = make_net()
    from repro.paxos.acceptor import AcceptorActor

    alive = AcceptorActor(env, net, "a-alive", stream="S")
    alive.start()
    net.add_host("a-dead")
    suspected = []
    watchdog = RingWatchdog(
        env, net, "w", targets=["a-alive", "a-dead"],
        on_suspect=suspected.append, interval=0.1, misses=3,
    )
    watchdog.start()
    env.run(until=1.0)
    assert suspected == ["a-dead"]
    assert "a-alive" not in watchdog.suspected


def test_watchdog_forget_stops_probing():
    env, net = make_net()
    net.add_host("a-dead")
    suspected = []
    watchdog = RingWatchdog(
        env, net, "w", targets=["a-dead"],
        on_suspect=suspected.append, interval=0.1, misses=3,
    )
    watchdog.start()
    watchdog.forget("a-dead")
    env.run(until=1.0)
    assert suspected == []
    assert watchdog.targets == []


def test_suspected_target_reported_once():
    env, net = make_net()
    net.add_host("a-dead")
    suspected = []
    watchdog = RingWatchdog(
        env, net, "w", targets=["a-dead"],
        on_suspect=suspected.append, interval=0.05, misses=2,
    )
    watchdog.start()
    env.run(until=2.0)
    assert suspected == ["a-dead"]
