"""Ring reformation: surviving an acceptor crash in ring mode."""

import pytest

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.multicast.stream import StreamDeployment
from repro.paxos import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_world(seed=43):
    env = Environment()
    net = Network(env, rng=RngRegistry(seed), default_link=LinkSpec(latency=0.001))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        lam=500,
        delta_t=0.05,
    )
    deployment = StreamDeployment(env, net, config)
    deployment.start()
    directory = {"S1": deployment}
    replica = BroadcastReplica(env, net, "replica", "G", directory)
    replica.bootstrap(["S1"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=128, timeout=0.5,
        rng=RngRegistry(seed + 1).stream("c"),
    )
    client.start_threads("S1", 3)
    return env, net, deployment, replica, client


def test_acceptor_crash_stalls_unwatched_ring():
    env, net, deployment, replica, client = make_world()
    env.run(until=1.0)
    deployment.acceptors[1].crash()   # middle of the ring
    stalled_from = replica.delivered_ops.total
    env.run(until=3.0)
    # Without reformation the ring cannot complete Phase 2.
    assert replica.delivered_ops.total - stalled_from < 20


def test_manual_ring_reformation_resumes_service():
    env, net, deployment, replica, client = make_world()
    env.run(until=1.0)
    deployment.acceptors[1].crash()
    env.run(until=1.5)
    deployment.reform_ring("S1/a2")
    env.run(until=4.0)
    assert deployment.config.acceptors == ("S1/a1", "S1/a3")
    rate = client.ops.rate_between(2.5, 4.0)
    assert rate > 0
    assert deployment.coordinator.leading


def test_watchdog_reforms_automatically():
    env, net, deployment, replica, client = make_world()
    watchdog = deployment.enable_ring_watchdog(interval=0.1, misses=3)
    env.run(until=1.0)
    deployment.acceptors[0].crash()   # the ring's head this time
    env.run(until=5.0)
    assert "S1/a1" in watchdog.suspected
    assert deployment.config.acceptors == ("S1/a2", "S1/a3")
    assert client.ops.rate_between(3.0, 5.0) > 0


def test_reform_below_majority_rejected():
    env, net, deployment, replica, client = make_world()
    env.run(until=0.5)
    deployment.reform_ring("S1/a1")
    with pytest.raises(RuntimeError, match="no majority"):
        deployment.reform_ring("S1/a2")


def test_watchdog_quiet_on_healthy_ring():
    env, net, deployment, replica, client = make_world()
    watchdog = deployment.enable_ring_watchdog(interval=0.1, misses=3)
    env.run(until=3.0)
    assert watchdog.suspected == set()
    assert deployment.config.acceptors == ("S1/a1", "S1/a2", "S1/a3")
