"""Unit tests for the λ/Δt skip calculator."""

import pytest

from repro.paxos import SkipCalculator


def test_idle_stream_skips_full_interval():
    calc = SkipCalculator(lam=4000, delta_t=0.1)
    assert calc.skip_needed() == 400


def test_loaded_stream_never_skips():
    calc = SkipCalculator(lam=4000, delta_t=0.1)
    calc.record_positions(500)
    assert calc.skip_needed() == 0


def test_partial_load_tops_up_the_difference():
    calc = SkipCalculator(lam=4000, delta_t=0.1)
    calc.record_positions(150)
    assert calc.skip_needed() == 250


def test_interval_counter_resets():
    calc = SkipCalculator(lam=1000, delta_t=0.1)
    calc.record_positions(100)
    assert calc.skip_needed() == 0
    assert calc.skip_needed() == 100  # next interval starts from zero


def test_fractional_target_carries_between_intervals():
    # λ·Δt = 2.5 positions per interval: skips must average 2.5.
    calc = SkipCalculator(lam=25, delta_t=0.1)
    total = sum(calc.skip_needed() for _ in range(10))
    assert total == 25


def test_overload_does_not_accumulate_credit():
    calc = SkipCalculator(lam=1000, delta_t=0.1)
    calc.record_positions(10_000)
    assert calc.skip_needed() == 0
    assert calc.skip_needed() == 100  # surplus does not carry over


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        SkipCalculator(lam=0)
    with pytest.raises(ValueError):
        SkipCalculator(delta_t=0)
    calc = SkipCalculator()
    with pytest.raises(ValueError):
        calc.record_positions(-1)
