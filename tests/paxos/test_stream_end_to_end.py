"""End-to-end ordering through one Paxos stream on the simulated network."""

import pytest

from repro.multicast.stream import StreamDeployment
from repro.paxos import AppValue, SkipToken, StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def build(env, ring_mode=True, skip_enabled=False, loss=0.0, **config_kwargs):
    rng = RngRegistry(42)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=0.001, loss=loss))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        ring_mode=ring_mode,
        skip_enabled=skip_enabled,
        **config_kwargs,
    )
    deployment = StreamDeployment(env, net, config)
    return net, deployment


def collect_learner(deployment, name="learner"):
    delivered = []

    def on_deliver(instance, batch):
        delivered.append((instance, batch))

    learner = deployment.make_learner(name, on_deliver)
    return learner, delivered


@pytest.mark.parametrize("ring_mode", [True, False])
def test_values_are_ordered_and_delivered(ring_mode):
    env = Environment()
    net, deployment = build(env, ring_mode=ring_mode)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    for i in range(20):
        deployment.propose(AppValue(payload=i))
    env.run(until=1.0)
    instances = [i for i, _b in delivered]
    assert instances == sorted(instances)
    payloads = [t.payload for _i, b in delivered for t in b.tokens]
    assert payloads == list(range(20))


def test_two_learners_deliver_identical_sequences():
    env = Environment()
    net, deployment = build(env)
    _l1, d1 = collect_learner(deployment, "learner1")
    _l2, d2 = collect_learner(deployment, "learner2")
    deployment.start()
    for i in range(30):
        deployment.propose(AppValue(payload=i))
    env.run(until=1.0)
    assert [i for i, _ in d1] == [i for i, _ in d2]
    assert [b for _, b in d1] == [b for _, b in d2]
    assert len(d1) > 0


def test_batching_groups_multiple_values_per_instance():
    env = Environment()
    net, deployment = build(env, batch_max_tokens=8)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    env.run(until=0.1)  # let phase 1 complete so proposals queue up
    for i in range(32):
        deployment.propose(AppValue(payload=i))
    env.run(until=1.0)
    # 32 values in batches of up to 8: at most 32 instances, likely fewer.
    assert sum(len(b.tokens) for _i, b in delivered) == 32
    assert any(len(b.tokens) > 1 for _i, b in delivered)


def test_skip_mechanism_sustains_virtual_rate():
    env = Environment()
    net, deployment = build(env, skip_enabled=True, lam=1000, delta_t=0.1)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    env.run(until=2.0)
    positions = sum(b.positions() for _i, b in delivered)
    # ~1000 positions/s for ~2s, allow slack for startup.
    assert positions >= 1500
    assert all(
        all(isinstance(t, SkipToken) for t in b.tokens) for _i, b in delivered
    )


def test_loaded_stream_does_not_skip():
    env = Environment()
    net, deployment = build(env, skip_enabled=True, lam=100, delta_t=0.1)
    learner, delivered = collect_learner(deployment)
    deployment.start()

    def load():
        # Offered 200/s, but λ=100 caps admission: the stream runs at
        # exactly its virtual maximum and needs (almost) no skips.
        for i in range(400):
            deployment.propose(AppValue(payload=i))
            yield env.timeout(0.005)

    env.process(load())
    env.run(until=2.0)
    skip_positions = sum(
        t.count
        for _i, b in delivered
        for t in b.tokens
        if isinstance(t, SkipToken)
    )
    value_count = sum(
        1 for _i, b in delivered for t in b.tokens if isinstance(t, AppValue)
    )
    assert 150 <= value_count <= 230   # ~λ values/s for ~2 s
    assert skip_positions <= 30        # only fractional top-ups


def test_lambda_caps_admission_rate():
    """λ is the maximum virtual throughput: values above it queue."""
    env = Environment()
    net, deployment = build(env, skip_enabled=True, lam=50, delta_t=0.1)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    for i in range(1000):
        deployment.propose(AppValue(payload=i))
    env.run(until=2.0)
    value_count = sum(
        1 for _i, b in delivered for t in b.tokens if isinstance(t, AppValue)
    )
    assert value_count <= 120   # ~50/s over 2 s (+ first-instant burst)


def test_lossy_network_still_delivers_everything():
    env = Environment()
    net, deployment = build(env, ring_mode=False, loss=0.05)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    for i in range(50):
        deployment.propose(AppValue(payload=i))
    env.run(until=10.0)
    payloads = [t.payload for _i, b in delivered for t in b.tokens]
    assert payloads == list(range(50))


def test_learner_recovery_catches_up_on_backlog():
    env = Environment()
    net, deployment = build(env)
    deployment.start()
    for i in range(40):
        deployment.propose(AppValue(payload=i))
    env.run(until=1.0)
    # Learner joins late: must recover the full history from acceptors.
    learner, delivered = collect_learner(deployment, "late-learner")
    learner.start_recovery()
    env.run(until=2.0)
    payloads = [t.payload for _i, b in delivered for t in b.tokens]
    assert payloads == list(range(40))


def test_throttle_caps_value_rate():
    env = Environment()
    net, deployment = build(env, value_rate_limit=100.0)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    for i in range(500):
        deployment.propose(AppValue(payload=i))
    env.run(until=2.0)
    values = sum(
        1 for _i, b in delivered for t in b.tokens if isinstance(t, AppValue)
    )
    # ~100/s over ~2s; allow the first instant's burst.
    assert values <= 230
    assert values >= 150


def test_coordinator_cpu_cost_caps_throughput():
    env = Environment()
    net, deployment = build(env, cpu_cost_per_batch=0.01, batch_max_tokens=1)
    learner, delivered = collect_learner(deployment)
    deployment.start()
    for i in range(1000):
        deployment.propose(AppValue(payload=i))
    env.run(until=1.0)
    # 10 ms of coordinator CPU per instance => ~100 instances/s.
    assert 50 <= len(delivered) <= 120
