"""Property tests: seeded chaos schedules keep every safety invariant.

The ``chaos`` scenario throws seeded crashes (with checkpoint
recovery), partitions, loss, delay spikes, duplication and reordering
at a 2-group x 3-stream cluster while subscriptions churn; the
invariant suite (stream agreement, prefix consistency, gap-free
delivery, acyclic order, merge points) runs throughout.  Here that
scenario is swept over many seeds, plus determinism regressions:
identical seed => bit-identical schedule and bit-identical delivery
logs.

``REPRO_CHAOS_SEEDS`` widens the sweep (the nightly CI job sets it).
"""

import os

import pytest

from repro.faults import RandomChaos, ScenarioRunner, get_scenario, run_scenario

N_SEEDS = max(20, int(os.environ.get("REPRO_CHAOS_SEEDS", "20")))


@pytest.mark.parametrize("seed", range(1, N_SEEDS + 1))
def test_chaos_invariants_hold(seed):
    result = run_scenario(get_scenario("chaos"), seed=seed)
    # run_scenario raises InvariantViolation on any broken property;
    # reaching here means every periodic and final check passed.
    assert result.converged
    assert result.checks_run >= 2
    assert all(count > 0 for count in result.delivered.values())


def test_same_seed_same_schedule():
    chaos = dict(
        horizon=5.0,
        crash_targets=("r1", "r2"),
        partition_cuts=((("r1",), ("a1", "a2")),),
    )
    assert (
        RandomChaos(seed=11, **chaos).generate()
        == RandomChaos(seed=11, **chaos).generate()
    )
    assert (
        RandomChaos(seed=11, **chaos).generate()
        != RandomChaos(seed=12, **chaos).generate()
    )


def test_same_seed_bit_identical_delivery_logs():
    """One (scenario, seed) pair reproduces the exact delivery history:
    the digest covers every replica's (stream, position, payload)
    sequence."""
    first = run_scenario(get_scenario("chaos"), seed=3)
    second = run_scenario(get_scenario("chaos"), seed=3)
    assert first.digest == second.digest
    assert first.delivered == second.delivered
    # And per-replica logs match record by record.  (msg_ids come from
    # a process-global counter, so compare the payload-level identity.)
    a = ScenarioRunner(get_scenario("chaos"), seed=5)
    b = ScenarioRunner(get_scenario("chaos"), seed=5)
    a.run()
    b.run()
    for name in a.suite.logs:
        assert [
            (r.stream, r.position, r.payload, r.at)
            for r in a.suite.logs[name].records
        ] == [
            (r.stream, r.position, r.payload, r.at)
            for r in b.suite.logs[name].records
        ]


def test_different_seeds_differ():
    assert (
        run_scenario(get_scenario("chaos"), seed=6).digest
        != run_scenario(get_scenario("chaos"), seed=7).digest
    )
