"""Property-based tests of the deterministic merge invariants.

The safety property of atomic multicast: for any token contents and any
arrival schedule, (1) replicas of one group deliver identical
sequences, (2) per-stream order is preserved, (3) any two groups
deliver the messages they both receive in the same relative order
(acyclic delivery), and (4) messages of a subscribed stream after the
merge point are never lost.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.multicast.elastic import ElasticMerger
from repro.multicast.stream import TokenLog
from repro.paxos.types import AppValue, SkipToken, SubscribeMsg

MSG_COUNTER = itertools.count()


def fresh_value(stream_tag):
    return AppValue(payload=(stream_tag, next(MSG_COUNTER)), size=8)


# A scripted scenario: tokens for two streams with one cross-subscribe.
@st.composite
def two_stream_scenario(draw):
    """Token sequences for S1/S2 plus the index where G subscribes."""
    sub = SubscribeMsg(group="G", stream="S2")
    n1 = draw(st.integers(min_value=1, max_value=12))
    n2 = draw(st.integers(min_value=1, max_value=12))
    s1_tokens = []
    for _ in range(n1):
        kind = draw(st.sampled_from(["value", "skip"]))
        s1_tokens.append(
            fresh_value("s1") if kind == "value"
            else SkipToken(count=draw(st.integers(1, 4)))
        )
    sub_at_1 = draw(st.integers(0, len(s1_tokens)))
    s1_tokens.insert(sub_at_1, sub)
    s2_tokens = []
    for _ in range(n2):
        kind = draw(st.sampled_from(["value", "skip"]))
        s2_tokens.append(
            fresh_value("s2") if kind == "value"
            else SkipToken(count=draw(st.integers(1, 4)))
        )
    sub_at_2 = draw(st.integers(0, len(s2_tokens)))
    s2_tokens.insert(sub_at_2, sub)
    # Trailing skips keep both streams advancing so alignment finishes.
    s1_tokens.append(SkipToken(count=200))
    s2_tokens.append(SkipToken(count=200))
    return s1_tokens, s2_tokens


def run_merger(s1_tokens, s2_tokens, schedule):
    """Feed tokens in an arbitrary interleaving; return deliveries."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    delivered = []
    merger = ElasticMerger(
        group="G",
        deliver=lambda v, s, p: delivered.append((v.payload, s)),
        stream_provider=lambda name: logs[name],
    )
    merger.bootstrap({"S1": s1})
    queues = {"S1": list(s1_tokens), "S2": list(s2_tokens)}
    for which in schedule:
        name = "S1" if which else "S2"
        if queues[name]:
            (s1 if name == "S1" else s2).append(queues[name].pop(0))
            merger.pump()
    for name, log in (("S1", s1), ("S2", s2)):
        while queues[name]:
            log.append(queues[name].pop(0))
        merger.pump()
    return delivered, merger


@given(
    scenario=two_stream_scenario(),
    schedule=st.lists(st.booleans(), min_size=0, max_size=40),
)
@settings(max_examples=150, deadline=None)
def test_delivery_is_schedule_independent(scenario, schedule):
    """Replicas of one group deliver identically regardless of timing."""
    s1_tokens, s2_tokens = scenario
    baseline, merger_a = run_merger(s1_tokens, s2_tokens, [])
    other, merger_b = run_merger(s1_tokens, s2_tokens, schedule)
    assert baseline == other
    assert merger_a.subscriptions == merger_b.subscriptions


@given(scenario=two_stream_scenario())
@settings(max_examples=150, deadline=None)
def test_per_stream_order_preserved(scenario):
    """Messages of one stream are delivered in stream order."""
    s1_tokens, s2_tokens = scenario
    delivered, _ = run_merger(s1_tokens, s2_tokens, [])
    for stream_name, tokens in (("S1", s1_tokens), ("S2", s2_tokens)):
        stream_order = [
            t.payload for t in tokens if isinstance(t, AppValue)
        ]
        delivered_order = [p for p, s in delivered if s == stream_name]
        # Delivered messages of the stream appear in stream order
        # (a prefix of S2 may be discarded before the merge point).
        indices = [stream_order.index(p) for p in delivered_order]
        assert indices == sorted(indices)


@given(scenario=two_stream_scenario())
@settings(max_examples=150, deadline=None)
def test_no_duplicates_and_s1_complete(scenario):
    """Nothing is duplicated; the always-subscribed stream loses nothing."""
    s1_tokens, s2_tokens = scenario
    delivered, _ = run_merger(s1_tokens, s2_tokens, [])
    payloads = [p for p, _s in delivered]
    assert len(payloads) == len(set(payloads))
    s1_values = [t.payload for t in s1_tokens if isinstance(t, AppValue)]
    assert [p for p, s in delivered if s == "S1"] == s1_values


@given(scenario=two_stream_scenario())
@settings(max_examples=100, deadline=None)
def test_acyclic_across_groups(scenario):
    """A second group subscribed to both streams from the start orders
    the common suffix consistently with the dynamically-subscribing one."""
    s1_tokens, s2_tokens = scenario

    delivered_g, _ = run_merger(s1_tokens, s2_tokens, [])

    # Group H is statically subscribed to both streams.
    s1, s2 = TokenLog(), TokenLog()
    for t in s1_tokens:
        s1.append(t)
    for t in s2_tokens:
        s2.append(t)
    delivered_h = []
    merger_h = ElasticMerger(
        group="H",
        deliver=lambda v, s, p: delivered_h.append((v.payload, s)),
        stream_provider=lambda name: {"S1": s1, "S2": s2}[name],
    )
    merger_h.bootstrap({"S1": s1, "S2": s2})
    merger_h.pump()

    common = set(p for p, _s in delivered_g) & set(p for p, _s in delivered_h)
    order_g = [p for p, _s in delivered_g if p in common]
    order_h = [p for p, _s in delivered_h if p in common]
    assert order_g == order_h
