"""StaticMerger and ElasticMerger must agree when nothing is dynamic.

The elastic merger with a fixed Σ and no control messages is exactly
Multi-Ring Paxos's static merge; hypothesis checks the two produce
identical delivery sequences for arbitrary token content.
"""

from hypothesis import given, settings, strategies as st

from repro.multicast.elastic import ElasticMerger
from repro.multicast.merge import StaticMerger
from repro.multicast.stream import TokenLog
from repro.paxos.types import AppValue, SkipToken


@st.composite
def stream_tokens(draw):
    streams = {}
    for name in ("S1", "S2", "S3")[: draw(st.integers(1, 3))]:
        tokens = []
        for i in range(draw(st.integers(0, 15))):
            if draw(st.booleans()):
                tokens.append(AppValue(payload=(name, i), size=4))
            else:
                tokens.append(SkipToken(count=draw(st.integers(1, 5))))
        streams[name] = tokens
    return streams


def fill(tokens_by_stream):
    logs = {name: TokenLog() for name in tokens_by_stream}
    for name, tokens in tokens_by_stream.items():
        for token in tokens:
            logs[name].append(token)
    return logs


@given(tokens_by_stream=stream_tokens())
@settings(max_examples=200, deadline=None)
def test_static_and_elastic_agree_on_static_input(tokens_by_stream):
    logs_a = fill(tokens_by_stream)
    delivered_static = []
    static = StaticMerger(
        logs_a, lambda v, s, p: delivered_static.append((v.payload, s, p))
    )
    static.pump()

    logs_b = fill(tokens_by_stream)
    delivered_elastic = []
    elastic = ElasticMerger(
        group="G",
        deliver=lambda v, s, p: delivered_elastic.append((v.payload, s, p)),
        stream_provider=lambda name: logs_b[name],
    )
    elastic.bootstrap(logs_b)
    elastic.pump()

    assert delivered_static == delivered_elastic
    assert static.positions == elastic.positions()


@given(tokens_by_stream=stream_tokens())
@settings(max_examples=100, deadline=None)
def test_incremental_and_bulk_static_merge_agree(tokens_by_stream):
    """Feeding the static merger token by token equals bulk feeding."""
    logs_bulk = fill(tokens_by_stream)
    bulk = []
    merger_bulk = StaticMerger(logs_bulk, lambda v, s, p: bulk.append((v.payload, s)))
    merger_bulk.pump()

    logs_inc = {name: TokenLog() for name in tokens_by_stream}
    inc = []
    merger_inc = StaticMerger(logs_inc, lambda v, s, p: inc.append((v.payload, s)))
    pending = {name: list(tokens) for name, tokens in tokens_by_stream.items()}
    # Round-robin the feeding in a fixed but different order.
    while any(pending.values()):
        for name in sorted(pending, reverse=True):
            if pending[name]:
                logs_inc[name].append(pending[name].pop(0))
                merger_inc.pump()
    assert inc == bulk
