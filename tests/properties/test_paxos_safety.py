"""Property-based safety test for single-decree Paxos.

Two proposers compete for one instance through three acceptors while
hypothesis drives an adversarial network: messages may be delivered in
any order, duplicated, or dropped.  Safety: once a quorum has accepted
a value at some ballot such that it can be decided, no different value
is ever decided -- and all decided values across proposers agree.
"""

from dataclasses import dataclass, field

from hypothesis import given, settings, strategies as st

from repro.paxos.acceptor import AcceptorCore
from repro.paxos.ballot import ballot_for, next_ballot, quorum_size
from repro.paxos.messages import Phase1a, Phase1b, Phase2a, Phase2b
from repro.paxos.types import AppValue, Batch

INSTANCE = 0
N_ACCEPTORS = 3


@dataclass
class MiniProposer:
    """A correct (but impatient) Paxos proposer for one instance."""

    index: int
    value: Batch
    ballot: int = -1
    promises: dict = field(default_factory=dict)
    acks: set = field(default_factory=set)
    proposed: Batch = None
    decided: Batch = None

    def start_ballot(self):
        if self.ballot < 0:
            self.ballot = ballot_for(self.index, 0, 2)
        else:
            self.ballot = next_ballot(self.ballot, self.index, 2)
        self.promises = {}
        self.acks = set()
        self.proposed = None
        return Phase1a(stream="S", ballot=self.ballot, from_instance=0)

    def on_phase1b(self, msg: Phase1b):
        if msg.ballot != self.ballot or self.proposed is not None:
            return None
        self.promises[msg.acceptor] = msg
        if len(self.promises) < quorum_size(N_ACCEPTORS):
            return None
        best_vrnd, best_value = -1, self.value
        for promise in self.promises.values():
            for instance, vrnd, batch in promise.accepted:
                if instance == INSTANCE and vrnd > best_vrnd:
                    best_vrnd, best_value = vrnd, batch
        self.proposed = best_value
        return Phase2a(
            stream="S", ballot=self.ballot, instance=INSTANCE, batch=best_value
        )

    def on_phase2b(self, msg: Phase2b):
        if msg.ballot != self.ballot or self.proposed is None:
            return
        self.acks.add(msg.acceptor)
        if len(self.acks) >= quorum_size(N_ACCEPTORS):
            self.decided = self.proposed


@st.composite
def adversarial_schedule(draw):
    """A list of abstract scheduler actions."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("start"), st.integers(0, 1)),
                st.tuples(st.just("deliver"), st.integers(0, 200)),
                st.tuples(st.just("duplicate"), st.integers(0, 200)),
                st.tuples(st.just("drop"), st.integers(0, 200)),
            ),
            min_size=5,
            max_size=80,
        )
    )


@given(schedule=adversarial_schedule())
@settings(max_examples=300, deadline=None)
def test_single_instance_agreement(schedule):
    acceptors = {
        f"a{i}": AcceptorCore(f"a{i}", "S", ring=()) for i in range(N_ACCEPTORS)
    }
    value_a = Batch(tokens=(AppValue(payload="A"),))
    value_b = Batch(tokens=(AppValue(payload="B"),))
    proposers = [MiniProposer(0, value_a), MiniProposer(1, value_b)]

    # In-flight messages: (destination_kind, destination, message).
    in_flight = []

    def route_to_acceptors(message, proposer_index):
        for name in acceptors:
            in_flight.append(("acceptor", name, message, proposer_index))

    for action, arg in schedule:
        if action == "start":
            route_to_acceptors(proposers[arg].start_ballot(), arg)
        elif not in_flight:
            continue
        elif action == "duplicate":
            in_flight.append(in_flight[arg % len(in_flight)])
        elif action == "drop":
            in_flight.pop(arg % len(in_flight))
        elif action == "deliver":
            kind, dst, message, pidx = in_flight.pop(arg % len(in_flight))
            if kind == "acceptor":
                acceptor = acceptors[dst]
                if isinstance(message, Phase1a):
                    effects = acceptor.on_phase1a(message, f"p{pidx}")
                else:
                    effects = acceptor.on_phase2a(message, f"p{pidx}")
                for _dst, reply in effects:
                    in_flight.append(("proposer", pidx, reply, pidx))
            else:
                proposer = proposers[dst]
                if isinstance(message, Phase1b):
                    out = proposer.on_phase1b(message)
                    if out is not None:
                        route_to_acceptors(out, dst)
                else:
                    proposer.on_phase2b(message)

    decided = [p.decided for p in proposers if p.decided is not None]
    payloads = {batch.tokens[0].payload for batch in decided}
    assert len(payloads) <= 1, f"conflicting decisions: {payloads}"

    # Additionally: a decided value must be anchored at a quorum --
    # majority of acceptors accepted it at some ballot.
    for batch in decided:
        holders = [
            name
            for name, acceptor in acceptors.items()
            if acceptor.log.get(INSTANCE) is not None
            and acceptor.log.get(INSTANCE).value == batch
        ]
        # The deciding quorum may have been partially overwritten by a
        # higher ballot, but only with the same value (agreement above);
        # at least one acceptor still holds it.
        assert holders, "decided value vanished from all acceptors"
