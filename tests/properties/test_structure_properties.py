"""Property-based tests for core data structures."""

from hypothesis import given, settings, strategies as st

from repro.kvstore import InMemoryStore, partition_index_of
from repro.multicast.stream import TokenLog
from repro.paxos.skip import SkipCalculator
from repro.paxos.types import AppValue, SkipToken
from repro.sim import Environment, Store, percentile


@st.composite
def token_lists(draw):
    tokens = []
    for _ in range(draw(st.integers(1, 30))):
        if draw(st.booleans()):
            tokens.append(AppValue(payload=draw(st.integers()), size=1))
        else:
            tokens.append(SkipToken(count=draw(st.integers(1, 10))))
    return tokens


@given(tokens=token_lists())
@settings(max_examples=200, deadline=None)
def test_token_log_covering_consistent(tokens):
    """token_covering agrees with a naive position-by-position expansion."""
    log = TokenLog()
    expanded = []
    for token in tokens:
        log.append(token)
        expanded.extend([token] * token.positions())
    assert log.frontier == len(expanded)
    hint = 0
    for position, expected in enumerate(expanded):
        token, hint = log.token_covering(position, hint)
        assert token is expected
    beyond, _ = log.token_covering(len(expanded))
    assert beyond is None


@given(tokens=token_lists(), positions=st.lists(st.integers(0, 300), max_size=20))
@settings(max_examples=100, deadline=None)
def test_token_log_random_access_with_any_hint(tokens, positions):
    log = TokenLog()
    expanded = []
    for token in tokens:
        log.append(token)
        expanded.extend([token] * token.positions())
    for raw in positions:
        position = raw % (len(expanded) + 5)
        for hint in (0, len(tokens) // 2, len(tokens)):
            token, _ = log.token_covering(position, hint)
            if position < len(expanded):
                assert token is expanded[position]
            else:
                assert token is None


@given(
    lam=st.integers(1, 5000),
    loads=st.lists(st.integers(0, 800), min_size=1, max_size=50),
)
@settings(max_examples=200, deadline=None)
def test_skip_calculator_never_undershoots_virtual_rate(lam, loads):
    """Over any load pattern, positions + skips >= λ·T (relative pacing)."""
    calc = SkipCalculator(lam=lam, delta_t=0.1)
    total = 0.0
    for load in loads:
        calc.record_positions(load)
        skip = calc.skip_needed()
        assert skip >= 0
        total += load + skip
    target = lam * 0.1 * len(loads)
    assert total >= target - 1.0  # at most the fractional carry short


@given(
    keys=st.lists(st.text(min_size=1, max_size=8), min_size=0, max_size=50),
    n_partitions=st.integers(1, 8),
)
@settings(max_examples=200, deadline=None)
def test_partitioning_total_and_deterministic(keys, n_partitions):
    for key in keys:
        first = partition_index_of(key, n_partitions)
        assert 0 <= first < n_partitions
        assert partition_index_of(key, n_partitions) == first


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(min_size=1, max_size=6),
        ),
        max_size=60,
    )
)
@settings(max_examples=200, deadline=None)
def test_store_matches_dict_model(operations):
    store = InMemoryStore()
    model: dict = {}
    for op, key in operations:
        if op == "put":
            store.put(key, key.upper())
            model[key] = key.upper()
        else:
            assert store.delete(key) == (key in model)
            model.pop(key, None)
    assert list(store.keys()) == sorted(model)
    high_sentinel = chr(0x10FFFF) * 10   # beyond any generated key
    assert store.get_range("", high_sentinel) == sorted(model.items())


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_sim_store_is_fifo(items):
    env = Environment()
    queue = Store(env)
    out = []

    def producer():
        for item in items:
            yield queue.put(item)

    def consumer():
        for _ in items:
            value = yield queue.get()
            out.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == items


@given(
    samples=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    pct=st.floats(min_value=0.1, max_value=100.0),
)
@settings(max_examples=200, deadline=None)
def test_percentile_bounds(samples, pct):
    value = percentile(samples, pct)
    assert min(samples) <= value <= max(samples)
    assert percentile(samples, 100) == max(samples)
