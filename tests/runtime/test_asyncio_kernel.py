"""AsyncioKernel semantics: the live kernel must drive the same
generator-process protocol the simulator does."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.asyncio_kernel import AsyncioKernel, QueueFull
from repro.runtime.kernel import Interrupt, Kernel
from repro.runtime.resources import Server
from repro.storage.stable import StableStore


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=10))


async def drain(kernel, seconds=0.0):
    """Let the loop run for a bit of wall time."""
    await asyncio.sleep(seconds if seconds > 0 else 0.01)


def test_kernel_satisfies_protocol():
    async def main():
        kernel = AsyncioKernel()
        assert isinstance(kernel, Kernel)

    run(main())


def test_timeout_resumes_process_with_value():
    async def main():
        kernel = AsyncioKernel()
        got = []

        def proc():
            value = yield kernel.timeout(0.01, "tick")
            got.append(value)

        kernel.process(proc())
        await drain(kernel, 0.1)
        assert got == ["tick"]
        assert not kernel.failures

    run(main())


def test_event_succeed_and_fail():
    async def main():
        kernel = AsyncioKernel()
        results = []

        def waiter(event):
            try:
                value = yield event
                results.append(("ok", value))
            except RuntimeError as exc:
                results.append(("err", str(exc)))

        good = kernel.event()
        bad = kernel.event()
        kernel.process(waiter(good))
        kernel.process(waiter(bad))
        await drain(kernel)
        good.succeed(7)
        bad.fail(RuntimeError("boom"))
        await drain(kernel)
        assert sorted(results) == [("err", "boom"), ("ok", 7)]
        assert not kernel.failures   # both failures were consumed

    run(main())


def test_any_of_and_all_of():
    async def main():
        kernel = AsyncioKernel()
        seen = []

        def proc():
            first = kernel.timeout(0.01, "fast")
            slow = kernel.timeout(0.5, "slow")
            result = yield kernel.any_of([first, slow])
            seen.append(set(result.values()))
            both = yield kernel.all_of(
                [kernel.timeout(0.01, "a"), kernel.timeout(0.02, "b")]
            )
            seen.append(set(both.values()))

        kernel.process(proc())
        await drain(kernel, 0.2)
        assert seen == [{"fast"}, {"a", "b"}]

    run(main())


def test_interrupt_detaches_from_wait_target():
    async def main():
        kernel = AsyncioKernel()
        store = kernel.store()
        stopped = []

        def loop():
            while True:
                try:
                    item = yield store.get()
                except Interrupt:
                    stopped.append(True)
                    return
                stopped.append(item)

        proc = kernel.process(loop())
        await drain(kernel)
        assert proc.is_alive
        proc.interrupt("stop")
        await drain(kernel)
        assert stopped == [True]
        assert not proc.is_alive
        # The abandoned getter must not resurrect the process.
        store.put_nowait("late")
        await drain(kernel)
        assert stopped == [True]

    run(main())


def test_store_fifo_and_bounded():
    async def main():
        kernel = AsyncioKernel()
        store = kernel.store(capacity=2)
        store.put_nowait(1)
        store.put_nowait(2)
        with pytest.raises(QueueFull):
            store.put_nowait(3)
        got = []

        def consumer():
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        kernel.process(consumer())
        await drain(kernel)
        assert got == [1, 2]

    run(main())


def test_unconsumed_failure_is_collected():
    async def main():
        kernel = AsyncioKernel()

        def exploder():
            yield kernel.timeout(0.0)
            raise ValueError("unhandled")

        kernel.process(exploder())
        await drain(kernel)
        assert len(kernel.failures) == 1
        assert isinstance(kernel.failures[0], ValueError)

    run(main())


def test_call_later_rejects_negative_delay():
    async def main():
        kernel = AsyncioKernel()
        with pytest.raises(ValueError):
            kernel.call_later(-1, lambda: None)

    run(main())


def test_server_and_stable_store_run_on_live_kernel():
    # The kernel-generic capacity models must work unchanged over the
    # asyncio backend (structural typing, no sim import).
    async def main():
        kernel = AsyncioKernel()
        server = Server(kernel, rate=1000.0, name="cpu")
        store = StableStore(kernel, write_latency=0.005)
        done = []

        def proc():
            yield server.request(cost=1.0)
            yield store.write(64)
            done.append(True)

        kernel.process(proc())
        await drain(kernel, 0.1)
        assert done == [True]
        assert server.completed == 1
        assert store.writes == 1
        assert not kernel.failures

    run(main())
