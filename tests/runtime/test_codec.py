"""Wire-codec round-trip tests.

Every registered message class must survive encode -> decode with field
equality, and for ``Message`` subclasses the encoded frame must be
exactly ``wire_size()`` bytes (the codec pads compact encodings up to
the modeled size so live byte counts match the simulator's bandwidth
model).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.deploy.wire import JoinAck, JoinLearner

from repro.coordination.registry import (
    RegistryGet,
    RegistryGetReply,
    RegistrySet,
    RegistrySetReply,
    RegistryWatch,
    WatchEvent,
)
from repro.kvstore.commands import (
    CommandReply,
    DeleteCmd,
    GetCmd,
    MapChangeCmd,
    PutCmd,
    RangeCmd,
    SignalMsg,
    StateTransferReply,
    StateTransferRequest,
    TxnCmd,
)
from repro.kvstore.partitioning import Partition, PartitionMap
from repro.net.messages import Message
from repro.paxos.messages import (
    Decision,
    Heartbeat,
    HeartbeatAck,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
    Propose,
    RecoverReply,
    RecoverRequest,
    RingAccept,
    Trim,
)
from repro.paxos.types import (
    AppValue,
    Batch,
    PrepareMsg,
    SkipToken,
    SubscribeMsg,
    UnsubscribeMsg,
)
from repro.runtime import codec


def _value(payload="v", size=64, msg_id=7, sender="c1"):
    return AppValue(payload, size=size, msg_id=msg_id, sender=sender)


def _batch(n=2):
    return Batch(tuple(_value(payload=f"p{i}", msg_id=100 + i) for i in range(n)))


_PMAP = PartitionMap(
    version=3,
    partitions=(
        Partition(index=0, stream="s1", replicas=("r1", "r2")),
        Partition(index=1, stream="s2", replicas=("r3",)),
    ),
    shared_stream="s1",
)

# One representative instance per registered class, keyed by class.
CORPUS = {
    Propose: Propose("s1", _value()),
    Phase1a: Phase1a(stream="s1", ballot=3, from_instance=10),
    Phase1b: Phase1b(
        stream="s1", ballot=3, acceptor="s1/a1",
        accepted=((4, 2, _batch(1)), (5, 1, None)),
    ),
    Phase2a: Phase2a("s1", 3, 7, _batch(2)),
    Phase2b: Phase2b("s1", 3, 7, "s1/a2"),
    RingAccept: RingAccept("s1", 3, 7, _batch(2), accepted_by=1),
    Decision: Decision("s1", 7, _batch(3)),
    RecoverRequest: RecoverRequest(stream="s1", from_instance=0, to_instance=9),
    RecoverReply: RecoverReply(
        stream="s1", decided=((1, _batch(1)), (2, Batch((SkipToken(5),)))),
        trimmed_below=1, highest_decided=2, base_position=12,
    ),
    Trim: Trim(stream="s1", below=4),
    Heartbeat: Heartbeat(nonce=99),
    HeartbeatAck: HeartbeatAck(nonce=99),
    AppValue: _value(payload=b"\x00\x01raw", size=128),
    SkipToken: SkipToken(count=250),
    SubscribeMsg: SubscribeMsg(group="g1", stream="s2", request_id=41),
    UnsubscribeMsg: UnsubscribeMsg(group="g1", stream="s1", request_id=42),
    PrepareMsg: PrepareMsg(group="g2", stream="s2", request_id=43),
    Batch: Batch((_value(), SkipToken(3), SubscribeMsg("g1", "s2", 44))),
    PutCmd: PutCmd(key="k1", value="hello", value_size=1024, client="c1", cmd_id=5),
    GetCmd: GetCmd(key="k1", client="c1", cmd_id=6),
    DeleteCmd: DeleteCmd(key="k1", client="c1", cmd_id=7),
    RangeCmd: RangeCmd(start="a", end="m", client="c1", cmd_id=8),
    TxnCmd: TxnCmd(
        ops=(("k1", "put", "v"), ("k2", "add", 3), ("k3", "read", None)),
        client="c1", cmd_id=9,
    ),
    MapChangeCmd: MapChangeCmd(new_map=_PMAP, cmd_id=10),
    CommandReply: CommandReply(
        cmd_id=5, ok=True, result=[("k1", "v1")], partition=0, replica="r1"
    ),
    SignalMsg: SignalMsg(cmd_id=8, partition=1, replica="r3"),
    StateTransferRequest: StateTransferRequest(version=3, requester="r2"),
    StateTransferReply: StateTransferReply(version=3, rows=(("k1", "v1"),)),
    Partition: _PMAP.partitions[0],
    PartitionMap: _PMAP,
    RegistryGet: RegistryGet(key="pm", request_id=1),
    RegistryGetReply: RegistryGetReply(
        key="pm", request_id=1, value="partition-map-v3", version=3
    ),
    RegistrySet: RegistrySet(key="pm", value="partition-map-v4", request_id=2),
    RegistrySetReply: RegistrySetReply(key="pm", request_id=2, version=4),
    RegistryWatch: RegistryWatch(key="pm"),
    WatchEvent: WatchEvent(key="pm", value="partition-map-v4", version=4),
    JoinLearner: JoinLearner(stream="s2", learner="r3", add=True, join_id=12),
    JoinAck: JoinAck(join_id=12),
}


def _field_names(cls):
    if dataclasses.is_dataclass(cls):
        return tuple(f.name for f in dataclasses.fields(cls))
    fast = getattr(cls, "_FIELDS", ())
    if fast:
        return tuple(fast)
    return tuple(getattr(cls, "__slots__", ()))


def test_corpus_covers_every_registered_class():
    missing = [
        cls.__name__ for cls in codec.registered_classes() if cls not in CORPUS
    ]
    assert not missing, f"no corpus entry for registered classes: {missing}"


@pytest.mark.parametrize(
    "cls", codec.registered_classes(), ids=lambda c: c.__name__
)
def test_round_trip_field_equality(cls):
    original = CORPUS[cls]
    decoded = codec.decode(codec.encode(original))
    assert type(decoded) is cls
    for name in _field_names(cls):
        assert getattr(decoded, name) == getattr(original, name), name
    assert decoded == original


@pytest.mark.parametrize(
    "cls",
    [c for c in codec.registered_classes() if issubclass(c, Message)],
    ids=lambda c: c.__name__,
)
def test_encoded_length_matches_wire_size(cls):
    original = CORPUS[cls]
    assert len(codec.encode(original)) == original.wire_size()


def test_version_byte_leads_every_frame():
    frame = codec.encode(Heartbeat(nonce=1))
    assert frame[0] == codec.WIRE_VERSION


def test_version_mismatch_rejected():
    frame = bytearray(codec.encode(Heartbeat(nonce=1)))
    frame[0] = codec.WIRE_VERSION + 1
    with pytest.raises(codec.CodecError):
        codec.decode(bytes(frame))


def test_unknown_type_id_rejected():
    frame = bytearray(codec.encode(Heartbeat(nonce=1)))
    frame[1:3] = (0xFF, 0xFF)
    with pytest.raises(codec.CodecError):
        codec.decode(bytes(frame))


def test_truncated_frame_rejected():
    frame = codec.encode(Decision("s1", 7, _batch(2)))
    with pytest.raises(codec.CodecError):
        codec.decode(frame[:10])


def test_unregistered_class_rejected():
    class NotRegistered:
        pass

    with pytest.raises(codec.CodecError):
        codec.encode(NotRegistered())


def test_padding_is_tolerated_and_bounded():
    # A compact message (small fields, generous modeled header) must be
    # padded up to its modeled size, and the padding must not confuse
    # the decoder.
    msg = Trim(stream="s1", below=4)
    frame = codec.encode(msg)
    assert len(frame) == msg.wire_size()
    assert codec.decode(frame) == msg


def test_big_integers_round_trip():
    huge = 1 << 200
    msg = Heartbeat(nonce=huge)
    assert codec.decode(codec.encode(msg)).nonce == huge


# -- trace-context versioning (wire v2) --------------------------------

def test_untraced_encode_is_byte_identical_v1():
    # No context -> version-1 frames, bit-for-bit what the pre-context
    # codec produced (old decoders and golden byte counts unaffected).
    for message in (Heartbeat(nonce=7), Trim(stream="s1", below=4)):
        frame = codec.encode(message)
        assert frame[0] == codec.WIRE_VERSION
        assert len(frame) == message.wire_size()


def test_context_frame_round_trips_message_and_context():
    context = {"origin": "n1", "ts": 1.25, "msg_id": 99}
    frame = codec.encode(Heartbeat(nonce=7), trace_context=context)
    assert frame[0] == codec.CONTEXT_WIRE_VERSION
    message, decoded = codec.decode_with_context(frame)
    assert message == Heartbeat(nonce=7)
    assert decoded == context
    # The plain decoder reads the same frame, discarding the context.
    assert codec.decode(frame) == Heartbeat(nonce=7)


def test_v1_frame_decodes_with_none_context():
    frame = codec.encode(Decision("s1", 7, _batch(2)))
    message, context = codec.decode_with_context(frame)
    assert context is None
    assert message == Decision("s1", 7, _batch(2))


@pytest.mark.parametrize(
    "cls", codec.registered_classes(), ids=lambda c: c.__name__
)
def test_cross_version_round_trip_full_corpus(cls):
    # Every registered class survives both wire versions with field
    # equality -- the cross-version interop corpus.
    original = CORPUS[cls]
    context = {"origin": "n2", "ts": 0.5}
    for frame in (
        codec.encode(original),
        codec.encode(original, trace_context=context),
    ):
        decoded, _ = codec.decode_with_context(frame)
        assert type(decoded) is cls
        assert decoded == original


def test_context_padding_still_matches_wire_size_when_room():
    # Context rides inside the modeled padding when it fits, so the
    # bandwidth model sees the same frame size either way.
    message = Trim(stream="s1", below=4)
    plain = codec.encode(message)
    traced = codec.encode(message, trace_context={"origin": "n1"})
    assert len(plain) == message.wire_size()
    assert len(traced) >= len(plain)


def test_corrupt_context_rejected():
    frame = bytearray(
        codec.encode(Heartbeat(nonce=7), trace_context={"origin": "n1"})
    )
    truncated = bytes(frame[: _ctx_length_offset(frame) + 2])
    with pytest.raises(codec.CodecError):
        codec.decode_with_context(truncated)


def _ctx_length_offset(frame):
    import struct

    _version, _type_id, body_len = struct.unpack_from("!BHI", frame, 0)
    return struct.calcsize("!BHI") + body_len


def test_supported_versions_are_exactly_one_and_two():
    assert codec.SUPPORTED_WIRE_VERSIONS == frozenset({1, 2})
    with pytest.raises(codec.CodecError):
        bad = bytearray(codec.encode(Heartbeat(nonce=1)))
        bad[0] = 3
        codec.decode_with_context(bytes(bad))


# -- zero-copy encode/decode (PR 8) -------------------------------------

@pytest.mark.parametrize(
    "cls", codec.registered_classes(), ids=lambda c: c.__name__
)
def test_encode_into_is_byte_identical_to_encode(cls):
    # The scratch-buffer encoder is the datapath's fast path; it must
    # produce bit-for-bit the same frames as ``encode`` so golden byte
    # counts and cross-version interop are unaffected.
    original = CORPUS[cls]
    context = {"origin": "n1", "ts": 2.5, "msg_id": 11}
    for ctx in (None, context):
        out = bytearray(b"prefix")   # encode_into appends, never clears
        n = codec.encode_into(original, out, trace_context=ctx)
        assert bytes(out[6:]) == codec.encode(original, trace_context=ctx)
        assert n == len(out) - 6


@pytest.mark.parametrize(
    "cls", codec.registered_classes(), ids=lambda c: c.__name__
)
def test_decode_accepts_memoryview(cls):
    original = CORPUS[cls]
    frame = bytearray(codec.encode(original))
    decoded, context = codec.decode_with_context(memoryview(frame))
    assert context is None
    # Decoded leaves must be owned copies: scrambling the receive
    # buffer afterwards must not corrupt the decoded message.
    for i in range(len(frame)):
        frame[i] ^= 0xFF
    assert decoded == original


def test_decoded_strings_are_real_str_not_views():
    frame = codec.encode(Propose("s1", _value(payload="hello")))
    decoded = codec.decode(memoryview(bytearray(frame)))
    assert type(decoded.token.payload) is str
    assert type(decoded.stream) is str


# -- robustness fuzz: truncation and corruption (PR 8) ------------------

@pytest.mark.parametrize(
    "cls", codec.registered_classes(), ids=lambda c: c.__name__
)
def test_truncation_fuzz_raises_codec_error_only(cls):
    # Every prefix of every registered frame must either decode cleanly
    # (truncation inside the modeled padding) or raise CodecError --
    # never a raw struct.error / IndexError / UnicodeDecodeError.
    frame = codec.encode(CORPUS[cls])
    step = 1 if len(frame) <= 256 else 7
    for cut in range(0, len(frame), step):
        try:
            codec.decode_with_context(frame[:cut])
        except codec.CodecError:
            pass


@pytest.mark.parametrize(
    "cls", codec.registered_classes(), ids=lambda c: c.__name__
)
def test_corruption_fuzz_raises_codec_error_only(cls):
    import random

    frame = codec.encode(CORPUS[cls])
    rng = random.Random(0xC0DEC + len(frame))
    positions = range(len(frame)) if len(frame) <= 128 else (
        rng.sample(range(len(frame)), 128)
    )
    for pos in positions:
        corrupt = bytearray(frame)
        corrupt[pos] ^= rng.randrange(1, 256)
        try:
            codec.decode_with_context(bytes(corrupt))
        except codec.CodecError:
            pass
