"""Layering: protocol code depends on the kernel interface, not the sim.

The protocol layer (net, paxos, multicast, kvstore, coordination,
storage), the runtime package and the deployment plane must not import
``repro.sim`` at module level -- they code against :mod:`repro.runtime.kernel` so
the same sources run on the simulator and on the live asyncio kernel.
Function-scoped deferred imports (e.g. the utilisation probe in
``runtime.resources``) are allowed: they create no import-time
dependency and only run on the sim path.
"""

from __future__ import annotations

import ast
import pathlib

import repro

PROTOCOL_PACKAGES = (
    "net",
    "paxos",
    "multicast",
    "kvstore",
    "coordination",
    "storage",
    "runtime",
    "deploy",
)


def _module_parts(root: pathlib.Path, path: pathlib.Path) -> list[str]:
    parts = ["repro", *path.relative_to(root).with_suffix("").parts]
    if parts[-1] == "__init__":
        parts.pop()
    return parts


def _resolve(module_parts: list[str], node: ast.ImportFrom) -> str:
    """Absolute dotted name an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module or ""
    package = module_parts[:-1] if module_parts[-1] != "repro" else module_parts
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def test_protocol_layer_has_no_module_level_sim_import():
    root = pathlib.Path(repro.__file__).parent
    offenders = []
    for package in PROTOCOL_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            tree = ast.parse(path.read_text())
            module_parts = _module_parts(root, path)
            for node in tree.body:      # module level only, by design
                targets = []
                if isinstance(node, ast.Import):
                    targets = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    targets = [_resolve(module_parts, node)]
                for target in targets:
                    if target == "repro.sim" or target.startswith("repro.sim."):
                        offenders.append(
                            f"{path.relative_to(root.parent)}:{node.lineno} "
                            f"imports {target}"
                        )
    assert not offenders, "\n".join(offenders)


def test_runtime_package_imports_without_sim():
    # Importing the runtime package must not drag the simulator in:
    # a live deployment should never pay for (or depend on) sim code
    # it does not run.  Use a subprocess-free check: the lazy-export
    # table exists and the eager surface is only the kernel interface.
    import repro.runtime as runtime

    assert set(runtime._LAZY) >= {
        "AsyncioKernel",
        "TcpTransport",
        "encode",
        "decode",
        "run_live",
    }
