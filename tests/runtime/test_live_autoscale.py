"""Live autoscale smoke test: the closed loop over real sockets.

A 2-node TCP cluster with telemetry on, a ramping client workload, no
scripted subscribe -- the only way a second stream joins the group is
the autoscaler polling the per-node HTTP telemetry endpoints, deciding
the decide-rate ceiling is breached, and issuing the runtime
subscription itself.  Asserts the subscription happened autonomously,
replicas still agree, and the decision was traced.

Wall-clock runs on shared CI machines can stall arbitrarily, so the
drain timeout is generous and the test retries once before failing.
"""

from __future__ import annotations

import json
import os

from repro.runtime.supervisor import LiveConfig, run_live


def _attempt(telemetry_dir):
    config = LiveConfig(
        streams=2,
        replicas=2,
        nodes=2,
        duration=4.0,
        rate=60.0,
        rate_ramp=400.0,
        autoscale=True,
        autoscale_ceiling=120.0,
        telemetry_dir=str(telemetry_dir),
        drain_timeout=20.0,
    )
    return run_live(config)


def test_live_autoscaler_subscribes_a_spare_stream(tmp_path):
    report = _attempt(tmp_path / "a")
    if not (report.ok and report.subscribes_completed >= 1):
        report = _attempt(tmp_path / "b")    # retry once: noisy CI clocks
        telemetry = tmp_path / "b"
    else:
        telemetry = tmp_path / "a"
    assert report.ok, report.summary()
    assert report.autoscale
    # The reconfiguration was the controller's, not a script's.
    assert report.subscribes_requested >= 1, report.summary()
    assert report.subscribes_completed == report.subscribes_requested
    assert report.autoscale_events, report.summary()
    assert any("subscribe s2" in event for event in report.autoscale_events)
    assert report.sequences_identical, report.summary()
    assert min(report.delivered_per_replica.values()) > 0
    assert report.violations == [], report.summary()
    # The signal plane was actually scraped over HTTP.
    assert report.scrapes > 0
    # And the decision chain landed in the node trace: poll ->
    # decision -> action, same kinds the sim harness validates.
    kinds = set()
    for name in os.listdir(telemetry):
        if not name.endswith(".trace.jsonl"):
            continue
        with open(telemetry / name, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    kinds.add(json.loads(line)["kind"])
    assert "elastic.poll" in kinds
    assert "elastic.decision" in kinds
    assert "elastic.action" in kinds
