"""Smoke tests for the live-backend benchmark suite.

The microbenchmarks run at tiny sizes (milliseconds) so the suite's
plumbing -- report schema, baseline comparison, summary rendering --
is exercised on every test run.  The full cluster benchmark is the CI
live-perf-smoke job's territory (``python -m repro bench --live``).
"""

from __future__ import annotations

from repro.bench.live import (
    LIVE_BENCH_SCHEMA_VERSION,
    PRE_PR_LIVE,
    bench_codec_roundtrip,
    bench_transport_stream,
    compare_live_to_baseline,
    install_uvloop,
    live_summary_lines,
)


def test_codec_roundtrip_bench_smoke():
    result = bench_codec_roundtrip(300)
    assert result["roundtrips_per_s"] > 0
    assert result["mb_per_s"] > 0
    assert result["roundtrips"] > 0


def test_transport_stream_bench_smoke():
    result = bench_transport_stream(200)
    assert result["frames_per_s"] > 0
    assert result["frames"] == 200
    # Coalescing was live: flush accounting is populated and consistent.
    assert result["frames_per_flush"] >= 1.0


def test_install_uvloop_soft_fails_without_dependency():
    # The container has no uvloop; the gate must answer False without
    # raising (and must not disturb the default loop policy).
    try:
        import uvloop  # noqa: F401
        expected = True
    except ImportError:
        expected = False
    assert install_uvloop() is expected


def _fake_report(values_per_s: float) -> dict:
    return {
        "schema": LIVE_BENCH_SCHEMA_VERSION,
        "suite": "live",
        "benchmarks": {
            "codec_roundtrip": {
                "roundtrips_per_s": 10_000.0, "mb_per_s": 10.0
            },
            "transport_stream": {
                "frames_per_s": 40_000.0, "mb_per_s": 8.0,
                "frames_per_flush": 30.0,
            },
            "live_cluster": {
                "values_per_s": values_per_s, "offered_per_s": 6_000.0,
                "latency_p50_ms": 50.0, "latency_p99_ms": 200.0,
                "agreed": True,
            },
        },
    }


def test_compare_flags_live_cluster_regression():
    baseline = _fake_report(5_000.0)
    _lines, regressions = compare_live_to_baseline(
        _fake_report(2_000.0), baseline, threshold=0.25
    )
    assert any("live_cluster" in r for r in regressions)
    _lines, regressions = compare_live_to_baseline(
        _fake_report(4_900.0), baseline, threshold=0.25
    )
    assert regressions == []


def test_summary_lines_render_all_benchmarks():
    lines = live_summary_lines(_fake_report(5_000.0))
    text = "\n".join(lines)
    assert "codec_roundtrip" in text
    assert "transport_stream" in text
    assert "live_cluster" in text
    assert "agreed" in text


def test_pre_pr_baseline_is_pinned():
    # The committed speedup claim is measured against these numbers;
    # they must not drift silently.
    assert PRE_PR_LIVE["live_cluster"]["values_per_s"] == 3234.0
