"""Live smoke test: a real 2-stream TCP cluster on localhost.

Boots the full stack -- AsyncioKernel, TcpTransport, two Paxos
streams, three replicas -- drives a client workload for a couple of
wall seconds, performs a *runtime* subscribe while traffic flows, and
asserts the paper's guarantees held on the live backend: identical
non-empty delivery order everywhere, the subscription completed, and
zero invariant violations.

Wall-clock runs on shared CI machines can stall arbitrarily, so the
supervisor gets generous drain timeouts and the test retries once
before failing.
"""

from __future__ import annotations

from repro.runtime.supervisor import LiveConfig, run_live


def _attempt():
    config = LiveConfig(
        streams=2,
        replicas=3,
        duration=2.0,
        rate=120.0,
        drain_timeout=20.0,
    )
    return run_live(config)


def test_live_two_stream_cluster_agrees():
    report = _attempt()
    if not report.ok:
        report = _attempt()     # retry once: CI wall clocks are noisy
    assert report.sequences_identical, report.summary()
    assert min(report.delivered_per_replica.values()) > 0, report.summary()
    assert report.subscribes_completed == 1, report.summary()
    assert report.violations == [], report.summary()
    assert report.kernel_failures == [], report.summary()
    assert report.transport_counters["messages_delivered"] > 0
    # Real sockets were used: delivered bytes went through TCP framing.
    assert report.transport_counters["bytes_delivered"] > 0
    assert "OK" in report.summary()
    # Datapath defaults (PR 8): ring dissemination over TCP, adaptive
    # batching on, and the coalescing counters alive on real sockets.
    assert report.dissemination == "ring"
    assert report.event_loop    # records the loop actually used
    assert report.transport_counters["frames_coalesced"] > 0
    assert report.transport_counters["writer_flushes"] > 0


def _classic_attempt():
    config = LiveConfig(
        streams=1,
        replicas=2,
        duration=1.5,
        rate=120.0,
        drain_timeout=20.0,
        dissemination="classic",
        adaptive_batching=False,
    )
    return run_live(config)


def test_live_classic_dissemination_agrees():
    # The classic (direct phase-2) datapath must stay live-capable:
    # same agreement guarantees, no ring topology.
    report = _classic_attempt()
    if not report.ok:
        report = _classic_attempt()
    assert report.dissemination == "classic"
    assert report.sequences_identical, report.summary()
    assert min(report.delivered_per_replica.values()) > 0, report.summary()
    assert report.violations == [], report.summary()
    assert report.kernel_failures == [], report.summary()
