"""Live telemetry acceptance: a real 2-node cluster with the full
telemetry plane on.

Boots ``run_live`` with two clock domains (one transport + kernel
each, deliberately skewed), per-node JSONL traces and HTTP endpoints,
then checks the whole pipeline end-to-end: node-stamped traces merge
into a schema-valid timeline where at least one message's lifecycle
(submit -> decide -> deliver) spans both nodes, the supervisor's clock
handshake recovered the injected skew, health scrapes happened, and
the aggregated metrics dump is node-prefixed.

Wall-clock runs on shared CI machines can stall arbitrarily, so the
test retries once before failing (same policy as test_live_smoke).
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.obs import (
    LifecycleIndex,
    cross_node_messages,
    merge_files,
    validate_file,
)
from repro.runtime.supervisor import LiveCluster, LiveConfig, run_live

SKEW = 0.5


def _attempt(tmp_path, tag):
    telemetry_dir = str(tmp_path / f"telemetry-{tag}")
    config = LiveConfig(
        streams=2,
        replicas=3,
        duration=2.0,
        rate=120.0,
        drain_timeout=20.0,
        nodes=2,
        telemetry_dir=telemetry_dir,
        clock_skew=SKEW,
        scrape_interval=0.2,
        metrics_out=os.path.join(telemetry_dir, "metrics.json"),
    )
    return config, run_live(config)


def test_two_node_cluster_with_telemetry(tmp_path):
    config, report = _attempt(tmp_path, "a")
    if not report.ok:
        config, report = _attempt(tmp_path, "b")    # CI clocks are noisy
    assert report.ok, report.summary()
    assert report.nodes == 2
    assert "on 2 nodes" in report.summary()

    # Per-node traces exist and are stamped with their node id.
    assert sorted(report.node_traces) == ["n1", "n2"]
    for node, path in report.node_traces.items():
        with open(path) as handle:
            first = json.loads(handle.readline())
        assert first["node"] == node
        assert first["kind"] == "meta.node"

    # The clock handshake recovered the injected skew (localhost RTT is
    # sub-millisecond; allow generous CI noise).
    assert report.clock_offsets["n1"] == 0.0
    assert report.clock_offsets["n2"] == pytest.approx(SKEW, abs=0.2)

    # Merge -> one schema-valid, causally consistent timeline.
    out = str(tmp_path / "merged.trace.jsonl")
    merged = merge_files(
        [report.node_traces["n1"], report.node_traces["n2"]], out=out
    )
    assert validate_file(out) == len(merged)
    assert merged[0]["kind"] == "meta.merge"
    assert merged[0]["offsets"]["n2"] == pytest.approx(SKEW, abs=0.2)

    # At least one message's lifecycle crossed the wire between nodes,
    # and its causal order survived the merge.
    spanning = cross_node_messages(merged)
    assert spanning, "no message lifecycle spanned two nodes"
    index = LifecycleIndex().consume_all(merged)
    complete = [
        m for m in index.messages.values()
        if m.msg_id in spanning and m.submitted_at is not None
        and m.decided_at is not None and m.delivered_at
    ]
    assert complete, "no cross-node lifecycle fully reconstructed"
    for message in complete:
        assert message.submitted_at <= message.decided_at
        assert message.decided_at <= max(message.delivered_at.values())

    # The supervisor scraped /health and wrote endpoints.json.
    assert report.scrapes > 0
    endpoints_path = os.path.join(config.telemetry_dir, "endpoints.json")
    with open(endpoints_path) as handle:
        endpoints = json.load(handle)
    assert sorted(endpoints["nodes"]) == ["n1", "n2"]

    # --metrics-out is the aggregate of both nodes' scraped dumps.
    with open(config.metrics_out) as handle:
        dump = json.load(handle)
    assert dump["format"] == "repro-metrics/1"
    actors = {entry["actor"] for entry in dump["counters"]}
    assert any(actor.startswith("n1/") for actor in actors)
    assert any(actor.startswith("n2/") for actor in actors)

    # Trace context propagated across the wire: the receiving node saw
    # the sender's origin stamp.
    contexts = [e for e in merged if e["kind"] == "net.context"]
    assert any(
        e["origin"] is not None and e["origin"] != e["node"]
        for e in contexts
    )


def test_untelemetried_cluster_still_carries_flight_recorder(tmp_path):
    """Satellite: even without --telemetry-dir a live cluster keeps a
    causal ring buffer and can dump it next to --metrics-out."""

    async def main():
        metrics_out = str(tmp_path / "out" / "metrics.json")
        os.makedirs(os.path.dirname(metrics_out), exist_ok=True)
        cluster = LiveCluster(LiveConfig(metrics_out=metrics_out))
        assert cluster.recorder is not None
        # The private tracer feeds the recorder (no external tracer
        # installed in this test).
        cluster.nodes[0].kernel.tracer.emit(
            "invariant.violation", 0.0, message="synthetic", msg_id=1
        )
        paths = cluster.dump_flight_recordings("synthetic violation")
        assert paths == [str(tmp_path / "out" / "live-flight.jsonl")]
        events = [json.loads(line) for line in open(paths[0])]
        assert events[0]["kind"] == "meta.violation"
        assert events[0]["message"] == "synthetic violation"
        assert any(e["kind"] == "invariant.violation" for e in events)

    asyncio.run(asyncio.wait_for(main(), timeout=15))


def test_console_render_is_pure():
    from repro.runtime.console import render

    health = {
        "n1": {
            "node": "n1", "now": 5.0,
            "streams": {"s1": {"next_instance": 9, "positions_decided": 120,
                               "leading": True}},
            "replicas": {"r1": {"subscriptions": ["s1", "s2"],
                                "positions": {"s1": 8},
                                "delivered": 117,
                                "pending_subscription": False}},
            "transport": {"queue_depths": {"s1/coord": 2},
                          "counters": {"messages_sent": 500,
                                       "messages_delivered": 480,
                                       "messages_dropped": 1,
                                       "reconnect_attempts": 0,
                                       "peak_send_queue": 7}},
            "client": {"submitted": 130},
        },
        "n2": None,
    }
    previous = {
        "n1": {"streams": {"s1": {"positions_decided": 100}}},
    }
    metrics = {
        "n1": {"histograms": [{"actor": "client", "name": "latency_ms",
                               "n": 100, "mean": 2.0, "p50": 1.5,
                               "p95": 3.0, "p99": 4.5}]},
        "n2": None,
    }
    frame = render(health, metrics, previous, interval=2.0)
    assert "1/2 nodes up" in frame
    assert "(unreachable)" in frame
    assert "10.0" in frame                   # (120-100)/2s decide rate
    assert "s1,s2" in frame and "steady" in frame
    assert "s1/coord:2" in frame
    assert "submitted 130" in frame
    assert "p50 1.5 ms" in frame and "p99 4.5 ms" in frame
    # Previousless frames render without rates rather than crashing.
    first = render(health, metrics, None, interval=1.0)
    assert "-" in first


def test_console_alerts_panel_and_health_scores():
    from repro.runtime.console import render

    base = {"node": "n1", "streams": {}, "replicas": {}, "transport": {},
            "client": {"submitted": 1}}
    healthy = {"n1": {**base, "health_score": 100, "alerts": []}}
    frame = render(healthy, {"n1": None}, None, interval=1.0)
    assert "health n1=100" in frame
    assert "alerts: none" in frame

    alerting = {
        "n1": {**base, "health_score": 60, "alerts": [
            {"detector": "backpressure", "severity": "warning",
             "message": "send queue to acc at 900/1024", "key": "acc"},
        ]},
        "n2": None,      # dead node: rendered as a critical condition
    }
    frame = render(alerting, {"n1": None, "n2": None}, None, interval=1.0)
    assert "health n1=60 n2=?" in frame
    assert "backpressure: send queue to acc" in frame
    assert "critical" in frame and "telemetry unreachable" in frame


def test_fetch_all_dead_endpoint_costs_one_timeout_not_n(tmp_path):
    """Satellite: `repro top` must not hang when a node dies.  Scrapes
    run concurrently with a per-node timeout, so N dead endpoints cost
    max(timeout), not N x timeout, and survivors still render."""
    import socket
    import time as time_mod

    from repro.runtime.console import fetch_all

    # Reserved-but-unserved ports: connections hang until timeout
    # (connect to a listening socket that never accepts/answers).
    listeners = []
    endpoints = {}
    for name in ("n1", "n2", "n3"):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(0)
        listeners.append(sock)
        endpoints[name] = ("127.0.0.1", sock.getsockname()[1])
    try:
        started = time_mod.monotonic()
        results = fetch_all(endpoints, "/health", timeout=0.4)
        elapsed = time_mod.monotonic() - started
    finally:
        for sock in listeners:
            sock.close()
    assert results == {"n1": None, "n2": None, "n3": None}
    # Serial scrapes would need >= 3 * 0.4s; concurrent ones ~0.4s.
    assert elapsed < 1.0


def test_console_stage_breakdown_panel():
    from repro.runtime.console import render

    health = {"n1": {"node": "n1", "streams": {}, "replicas": {},
                     "transport": {}, "client": {"submitted": 1}}}
    base_metrics = {
        "n1": {"histograms": [
            {"actor": "client", "name": "latency_ms", "n": 10,
             "mean": 2.0, "p50": 1.5, "p95": 3.0, "p99": 4.5},
        ]},
    }
    # Without stage histograms the panel is absent entirely.
    frame = render(health, base_metrics, None, interval=1.0)
    assert "STAGE" not in frame

    stage_metrics = {
        "n1": {"histograms": base_metrics["n1"]["histograms"] + [
            {"actor": "s1/coord", "name": "batch_wait_ms", "n": 40,
             "mean": 1.0, "p50": 0.8, "p95": 2.0, "p99": 2.5},
            {"actor": "n1", "name": "queue_wait_ms", "n": 7,
             "mean": 0.1, "p50": 0.05, "p95": 0.2, "p99": 0.3},
            {"actor": "n1", "name": "loop_lag_ms", "n": 30,
             "mean": 0.4, "p50": 0.3, "p95": 0.9, "p99": 1.2},
            # Sampleless or unknown histograms never make a row.
            {"actor": "r1", "name": "merge_hol_wait_ms", "n": 0,
             "mean": None, "p50": None, "p95": None, "p99": None},
            {"actor": "r1", "name": "unrelated_ms", "n": 5,
             "mean": 1.0, "p50": 1.0, "p95": 1.0, "p99": 1.0},
        ]},
    }
    frame = render(health, stage_metrics, None, interval=1.0)
    assert "STAGE" in frame
    assert "batch wait" in frame
    assert "transport queue" in frame
    assert "event-loop lag" in frame
    assert "merge head-of-line" not in frame   # n=0 filtered
    assert "unrelated" not in frame
