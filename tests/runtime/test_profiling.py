"""Profiling-plane unit tests: the stack sampler, the bench wrapper
built on it, the event-loop-lag probe, and the telemetry ``/profile``
routes."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.runtime.profiling import LoopLagProbe, StackSampler


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=15))


def _busy_wait(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(100))


# -- StackSampler ------------------------------------------------------

def test_sampler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        StackSampler(interval=0.0)
    with pytest.raises(ValueError):
        StackSampler(depth=0)


def test_sampler_captures_all_threads_tagged_by_name():
    stop = threading.Event()
    worker = threading.Thread(
        target=_busy_wait, args=(stop,), name="busy-worker", daemon=True
    )
    worker.start()
    sampler = StackSampler(interval=0.002)
    try:
        sampler.start()
        assert sampler.running
        deadline = time.monotonic() + 5.0
        while sampler.total < 10 and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        stop.set()
        total = sampler.stop()
        worker.join()
    assert not sampler.running
    assert total >= 10
    names = {thread for thread, _ in sampler.samples}
    # The worker *and* the main thread were sampled; the sampler's own
    # thread never samples itself.
    assert "busy-worker" in names
    assert "MainThread" in names
    assert "repro-profiler" not in names
    (worker_stack,) = [
        frames for (thread, frames) in sampler.samples
        if thread == "busy-worker" and "test_profiling.py:_busy_wait"
        in frames
    ][:1]
    # Frames are root-first, so the thread bootstrap is at the front.
    assert worker_stack[0].startswith("threading.py:")


def test_sampler_collapsed_format_and_write(tmp_path):
    sampler = StackSampler()
    sampler.samples[("w", ("a.py:f", "b.py:g"))] = 3
    sampler.samples[("w", ("a.py:f",))] = 5
    text = sampler.collapsed()
    assert text == "w;a.py:f 5\nw;a.py:f;b.py:g 3\n"
    path = tmp_path / "stacks.txt"
    assert sampler.write_collapsed(str(path)) == 2
    assert path.read_text() == text


def test_sampler_sample_once_respects_depth():
    sampler = StackSampler(depth=2)
    stop = threading.Event()
    worker = threading.Thread(
        target=_busy_wait, args=(stop,), name="depth-worker", daemon=True
    )
    worker.start()
    try:
        sampler.sample_once()
    finally:
        stop.set()
        worker.join()
    assert sampler.total >= 1
    assert all(len(frames) <= 2 for _, frames in sampler.samples)


def test_sampler_start_is_idempotent():
    sampler = StackSampler(interval=0.05)
    sampler.start()
    thread = sampler._thread
    sampler.start()
    assert sampler._thread is thread
    sampler.stop()
    assert sampler.stop() == sampler.total   # idempotent


# -- bench wrapper (satellite: samples every thread, tags by name) -----

def test_sample_profile_tags_stacks_by_thread():
    from repro.bench.profiler import sample_profile

    def workload():
        stop = threading.Event()
        worker = threading.Thread(
            target=_busy_wait, args=(stop,), name="bench-worker", daemon=True
        )
        worker.start()
        deadline = time.monotonic() + 0.3
        while time.monotonic() < deadline:
            sum(range(1000))
        stop.set()
        worker.join()
        return "done"

    result, wall, samples, total = sample_profile(workload, interval=0.002)
    assert result == "done"
    assert wall > 0 and total > 0
    tags = {key.split("]")[0] + "]" for key in samples}
    assert "[MainThread]" in tags
    assert "[bench-worker]" in tags


# -- LoopLagProbe ------------------------------------------------------

def test_loop_lag_probe_records_windowed_histogram():
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.asyncio_kernel import AsyncioKernel

    async def main():
        registry = MetricsRegistry()
        kernel = AsyncioKernel(metrics=registry)
        probe = LoopLagProbe(kernel, registry, actor="n1", interval=0.01)
        probe.start()
        probe.start()            # idempotent
        await asyncio.sleep(0.15)
        probe.stop()
        ticks = probe.ticks
        await asyncio.sleep(0.05)
        assert probe.ticks == ticks   # stopped probes stop re-arming
        return registry.dump()

    dump = run(main())
    (entry,) = [
        h for h in dump["histograms"] if h["name"] == LoopLagProbe.METRIC
    ]
    assert entry["actor"] == "n1"
    assert entry["n"] >= 3
    assert entry["p50"] is not None and entry["p50"] >= 0.0


def test_loop_lag_probe_rejects_bad_interval():
    from repro.obs.metrics import MetricsRegistry

    with pytest.raises(ValueError):
        LoopLagProbe(None, MetricsRegistry(), interval=0.0)


# -- telemetry /profile routes -----------------------------------------

def test_telemetry_profile_routes_and_stop_writes_stacks(tmp_path):
    import json

    from repro.runtime.asyncio_kernel import AsyncioKernel
    from repro.runtime.telemetry import NodeTelemetry, http_get_json

    async def main():
        telemetry = NodeTelemetry("n1", profile_interval=0.002)
        kernel = AsyncioKernel(
            tracer=telemetry.tracer, metrics=telemetry.registry
        )
        telemetry.bind(kernel, lambda: {"node": "n1"})
        telemetry.profile_path = str(tmp_path / "n1.stacks.txt")
        host, port = await telemetry.start_server()

        status = await http_get_json(host, port, "/profile/start")
        assert status["node"] == "n1" and status["running"]
        deadline = asyncio.get_running_loop().time() + 5.0
        while (telemetry.profiler.total < 3
               and asyncio.get_running_loop().time() < deadline):
            await asyncio.sleep(0.01)

        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /profile HTTP/1.0\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        assert b"200 OK" in raw
        assert b"MainThread;" in raw

        status = await http_get_json(host, port, "/profile/stop")
        assert not status["running"]
        assert status["samples"] >= 3
        await telemetry.stop()

    run(main())
    stacks = (tmp_path / "n1.stacks.txt").read_text()
    assert "MainThread;" in stacks
    assert stacks.splitlines()[0].rsplit(" ", 1)[1].isdigit()
