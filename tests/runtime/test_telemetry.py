"""Telemetry plane unit tests: Prometheus rendering, clock-offset
estimation, dump aggregation, and the per-node HTTP endpoint."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.runtime.telemetry import (
    NodeTelemetry,
    TelemetryServer,
    aggregate_dumps,
    estimate_offset,
    http_get_json,
    prometheus_text,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=15))


# -- prometheus_text ---------------------------------------------------

def _dump():
    return {
        "format": "repro-metrics/1",
        "counters": [
            {"actor": "r1", "name": "delivered", "total": 42},
        ],
        "gauges": [
            {"actor": "r1", "name": "inbox_depth", "last": 3, "peak": 9},
            {"actor": "r2", "name": "inbox_depth", "last": None, "peak": None},
        ],
        "histograms": [
            {"actor": "client", "name": "latency_ms", "n": 10,
             "mean": 2.5, "p50": 2.0, "p95": 4.0, "p99": 5.0},
            {"actor": "client", "name": "empty_ms", "n": 0,
             "mean": None, "p50": None, "p95": None, "p99": None},
        ],
    }


def test_prometheus_text_renders_all_instrument_kinds():
    text = prometheus_text(_dump(), node="n1")
    assert 'repro_delivered_total{actor="r1",node="n1"} 42' in text
    assert 'repro_inbox_depth{actor="r1",node="n1"} 3' in text
    assert 'repro_inbox_depth_peak{actor="r1",node="n1"} 9' in text
    assert 'repro_latency_ms_count{actor="client",node="n1"} 10' in text
    assert 'quantile="0.99"' in text
    assert text.endswith("\n")


def test_prometheus_text_skips_sampleless_instruments():
    text = prometheus_text(_dump())
    # The never-sampled gauge has no value to expose...
    assert "r2" not in text
    # ...and the empty histogram exposes only its zero count.
    assert 'repro_empty_ms_count{actor="client"} 0' in text
    assert "repro_empty_ms_mean" not in text


def test_prometheus_text_sanitizes_names_and_labels():
    dump = {
        "counters": [{"actor": 'we"ird\\', "name": "latency-ms.total",
                      "total": 1}],
        "gauges": [], "histograms": [],
    }
    text = prometheus_text(dump)
    assert "repro_latency_ms_total_total" in text
    assert '\\"' in text


# -- estimate_offset ---------------------------------------------------

def test_estimate_offset_picks_minimum_rtt_sample():
    samples = [
        (0.0, 107.0, 4.0),      # rtt 4, offset 105
        (10.0, 112.05, 10.1),   # rtt 0.1, offset 102.0 (the keeper)
        (20.0, 126.0, 22.0),    # rtt 2, offset 105
    ]
    offset, rtt = estimate_offset(samples)
    assert rtt == pytest.approx(0.1)
    assert offset == pytest.approx(102.0)


def test_estimate_offset_rejects_empty():
    with pytest.raises(ValueError):
        estimate_offset([])


# -- aggregate_dumps ---------------------------------------------------

def test_aggregate_dumps_prefixes_actor_with_node():
    merged = aggregate_dumps({"n2": _dump(), "n1": _dump()})
    assert merged["format"] == "repro-metrics/1"
    actors = [entry["actor"] for entry in merged["counters"]]
    assert actors == ["n1/r1", "n2/r1"]
    assert len(merged["histograms"]) == 4
    # Still a valid dump: the CLI's rows_from_dump can render it.
    from repro.obs.metrics import rows_from_dump
    assert any(row[0] == "n1/client" for row in rows_from_dump(merged))


# -- TelemetryServer / http_get_json -----------------------------------

def test_server_routes_and_errors():
    async def main():
        calls = {"n": 0}

        def ok():
            calls["n"] += 1
            return "application/json", json.dumps({"hello": "world"})

        def boom():
            raise RuntimeError("kaput")

        server = TelemetryServer({"/ok": ok, "/boom": boom})
        host, port = await server.start()
        assert await http_get_json(host, port, "/ok") == {"hello": "world"}
        assert await http_get_json(host, port, "/ok?x=1") == {"hello": "world"}
        with pytest.raises(RuntimeError):
            await http_get_json(host, port, "/missing")     # 404
        with pytest.raises(RuntimeError):
            await http_get_json(host, port, "/boom")        # 500
        assert calls["n"] == 2
        assert server.requests_served >= 2
        await server.stop()

    run(main())


def test_node_telemetry_serves_alerts_and_health_score(tmp_path):
    """The self-observing watchdog: /health rolls in health_score and
    active alerts, /alerts serves the watchdog alone, and an anomalous
    snapshot (send queue near capacity) raises a real alert."""
    async def main():
        from repro.runtime.asyncio_kernel import AsyncioKernel

        telemetry = NodeTelemetry(
            "n1", trace_path=str(tmp_path / "n1.trace.jsonl")
        )
        kernel = AsyncioKernel(
            tracer=telemetry.tracer, metrics=telemetry.registry
        )
        snapshot = {
            "node": "n1", "now": 1.0, "streams": {}, "replicas": {},
            "transport": {"queue_depths": {}, "queue_capacity": 1024},
        }
        telemetry.bind(kernel, lambda: dict(snapshot))
        host, port = await telemetry.start_server()

        health = await http_get_json(host, port, "/health")
        assert health["health_score"] == 100 and health["alerts"] == []
        alerts = await http_get_json(host, port, "/alerts")
        assert alerts == {"node": "n1", "health_score": 100,
                          "active": [], "raised_total": 0}

        # A send queue near capacity is an anomaly the node sees in
        # its own snapshot on the next scrape.
        snapshot["transport"]["queue_depths"] = {"peer": 1000}
        health = await http_get_json(host, port, "/health")
        assert health["health_score"] < 100
        assert [a["detector"] for a in health["alerts"]] == [
            "backpressure"
        ]
        alerts = await http_get_json(host, port, "/alerts")
        assert alerts["raised_total"] == 1

        # Recovery clears it: scores return to clean.
        snapshot["transport"]["queue_depths"] = {"peer": 0}
        health = await http_get_json(host, port, "/health")
        assert health["health_score"] == 100 and health["alerts"] == []

        await telemetry.stop()
        # The raise/clear transitions landed in the node's own trace.
        kinds = [json.loads(line)["kind"]
                 for line in open(tmp_path / "n1.trace.jsonl")]
        assert "alert.raise" in kinds and "alert.clear" in kinds

    run(main())


def test_node_telemetry_serves_metrics_health_clock(tmp_path):
    async def main():
        from repro.runtime.asyncio_kernel import AsyncioKernel

        trace_path = str(tmp_path / "n1.trace.jsonl")
        telemetry = NodeTelemetry("n1", trace_path=trace_path)
        kernel = AsyncioKernel(
            tracer=telemetry.tracer, metrics=telemetry.registry,
            clock_offset=3.0,
        )
        telemetry.bind(kernel, lambda: {"node": "n1", "streams": {}})
        telemetry.registry.counter("r1", "delivered").record(5)
        host, port = await telemetry.start_server()

        health = await http_get_json(host, port, "/health")
        assert health["node"] == "n1"
        dump = await http_get_json(host, port, "/metrics.json")
        assert dump["format"] == "repro-metrics/1"
        assert dump["counters"][0]["total"] == 5
        clock = await http_get_json(host, port, "/clock")
        assert clock["node"] == "n1"
        # clock_offset shifts the node clock ahead of the loop epoch.
        assert clock["now"] >= 3.0

        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        assert b"200 OK" in raw
        assert b'repro_delivered_total{actor="r1",node="n1"} 5' in raw

        await telemetry.stop()
        # The JSONL sink was flushed on stop; header is the meta.node
        # event stamped with the node id.
        with open(trace_path) as handle:
            first = json.loads(handle.readline())
        assert first["kind"] == "meta.node"
        assert first["node"] == "n1"
        assert first["clock"] == "wall"

    run(main())
