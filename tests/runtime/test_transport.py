"""TCP transport: real sockets under the unchanged Actor base class."""

from __future__ import annotations

import asyncio

from repro.net.actor import Actor
from repro.paxos.messages import Heartbeat, HeartbeatAck
from repro.runtime.asyncio_kernel import AsyncioKernel
from repro.runtime.transport import TcpTransport


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=15))


async def eventually(predicate, timeout=5.0, interval=0.01):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


class Ponger(Actor):
    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.seen = []

    def on_heartbeat(self, msg, src):
        self.seen.append(msg.nonce)
        self.send(src, HeartbeatAck(nonce=msg.nonce))


class Pinger(Actor):
    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.acks = []

    def on_heartbeat_ack(self, msg, src):
        self.acks.append(msg.nonce)


def test_actor_round_trip_over_tcp():
    async def main():
        kernel = AsyncioKernel()
        transport = TcpTransport(kernel)
        ponger = Ponger(kernel, transport, "b")
        pinger = Pinger(kernel, transport, "a")
        await transport.start()
        ponger.start()
        pinger.start()
        for nonce in range(3):
            pinger.send("b", Heartbeat(nonce=nonce))
        assert await eventually(lambda: len(pinger.acks) == 3)
        assert sorted(ponger.seen) == [0, 1, 2]
        assert sorted(pinger.acks) == [0, 1, 2]
        assert transport.messages_delivered == 6
        assert transport.messages_sent == 6
        assert not kernel.failures
        pinger.stop()
        ponger.stop()
        await transport.stop()

    run(main())


def test_send_before_listener_up_reconnects_with_backoff():
    # Frames queued before start() must be delivered once the listener
    # binds -- the peer link retries the connection with backoff.
    async def main():
        kernel = AsyncioKernel()
        transport = TcpTransport(kernel)
        ponger = Ponger(kernel, transport, "b")
        ponger.start()
        transport.send("a", "b", Heartbeat(nonce=42), 56)
        await asyncio.sleep(0.15)   # let the link spin on backoff
        await transport.start()
        assert await eventually(lambda: ponger.seen == [42])
        assert transport._links["b"].connects >= 1
        ponger.stop()
        await transport.stop()

    run(main())


def test_crashed_receiver_drops_frames():
    async def main():
        kernel = AsyncioKernel()
        transport = TcpTransport(kernel)
        ponger = Ponger(kernel, transport, "b")
        await transport.start()
        ponger.start()
        ponger.crash()
        transport.send("a", "b", Heartbeat(nonce=1), 56)
        assert await eventually(lambda: transport.messages_dropped == 1)
        assert transport.messages_delivered == 0
        await transport.stop()

    run(main())


def test_backpressure_queue_full_drops():
    async def main():
        kernel = AsyncioKernel()
        transport = TcpTransport(kernel, send_queue_frames=4)
        transport.add_host("b")
        # No listener: the link can never connect, so the queue fills.
        for nonce in range(10):
            transport.send("a", "b", Heartbeat(nonce=nonce), 56)
        assert transport.messages_dropped == 6
        assert transport.messages_sent == 10
        await transport.stop()

    run(main())


class Sink(Actor):
    """Receiver that never replies (keeps delivery counts one-sided)."""

    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.seen = []

    def on_heartbeat(self, msg, src):
        self.seen.append(msg.nonce)


def test_writer_coalescing_counters_and_metrics():
    # A synchronous burst of sends must leave the writer task exactly
    # one wakeup: far fewer flushes than frames, with the coalescing
    # counters and the bytes-per-write histogram fed to the registry.
    async def main():
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        kernel = AsyncioKernel(tracer=None, metrics=registry)
        transport = TcpTransport(kernel, node="n1")
        sink = Sink(kernel, transport, "b")
        await transport.start()
        sink.start()
        for nonce in range(50):
            transport.send("a", "b", Heartbeat(nonce=nonce), 56)
        assert await eventually(lambda: len(sink.seen) == 50)
        counters = transport.counters()
        assert counters["frames_coalesced"] == 50
        assert 1 <= counters["writer_flushes"] < 50
        assert counters["bytes_written"] == transport.bytes_delivered
        totals = {
            e["name"]: e["total"]
            for e in registry.dump()["counters"]
        }
        assert totals["transport_frames_coalesced"] == 50
        assert totals["transport_writer_flushes"] == counters["writer_flushes"]
        histograms = {
            name: series
            for (_actor, name), series in registry.histograms().items()
        }
        assert "bytes_per_write" in histograms
        sink.stop()
        await transport.stop()

    run(main())


def test_reconnect_resends_unsent_burst_tail_exactly_once():
    # A burst interrupted by a connection error must be re-sent whole
    # after reconnecting: every frame delivered exactly once, in order.
    async def main():
        kernel = AsyncioKernel()
        transport = TcpTransport(kernel)
        sink = Sink(kernel, transport, "b")
        await transport.start()
        sink.start()
        # Fail the first link write *before* any bytes reach the socket
        # -- the link must treat it as a disconnect and retry the whole
        # pending burst on the fresh connection.
        real_write = asyncio.StreamWriter.write
        state = {"failed": False}

        def flaky_write(self, data):
            if not state["failed"]:
                state["failed"] = True
                raise ConnectionError("injected: link write failed")
            return real_write(self, data)

        asyncio.StreamWriter.write = flaky_write
        try:
            for nonce in range(20):
                transport.send("a", "b", Heartbeat(nonce=nonce), 56)
            assert await eventually(lambda: len(sink.seen) == 20)
        finally:
            asyncio.StreamWriter.write = real_write
        assert state["failed"], "injected fault was never hit"
        assert sink.seen == list(range(20))
        assert transport._links["b"].connects >= 2
        assert transport.messages_delivered == 20
        sink.stop()
        await transport.stop()

    run(main())


def test_drop_counters_feed_the_metrics_registry():
    async def main():
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        kernel = AsyncioKernel(tracer=None, metrics=registry)
        transport = TcpTransport(kernel, send_queue_frames=4, node="n1")

        # Crashed *sender*: the frame is dropped at the source.
        transport.add_host("a").crash()
        transport.send("a", "b", Heartbeat(nonce=1), 56)
        assert transport.dropped_on_crash == 1

        # No address for "c": the link can never connect, the bounded
        # queue fills, further sends drop under backpressure.
        for nonce in range(10):
            transport.send("x", "c", Heartbeat(nonce=nonce), 56)
        assert transport.dropped_backpressure == 6
        assert transport.peak_send_queue == 4
        assert transport.queue_depths()["c"] == 4

        counters = transport.counters()
        assert counters["dropped_on_crash"] == 1
        assert counters["dropped_backpressure"] == 6
        assert counters["peak_send_queue"] == 4

        # The same numbers are scrapeable from the registry under the
        # node's actor name.
        dump = registry.dump()
        by_name = {
            (e["actor"], e["name"]): e["total"] for e in dump["counters"]
        }
        assert by_name[("n1", "transport_dropped_on_crash")] == 1
        assert by_name[("n1", "transport_dropped_backpressure")] == 6
        gauge = dump["gauges"][0]
        assert gauge["name"] == "transport_send_queue_depth"
        assert gauge["peak"] == 4
        await transport.stop()

    run(main())


def test_reconnect_attempts_are_counted():
    async def main():
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        kernel = AsyncioKernel(tracer=None, metrics=registry)
        transport = TcpTransport(kernel, node="n1")
        # Point "b" at a port that was just closed: every connection
        # attempt is refused and counted.
        probe = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0
        )
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        transport.register_address("b", ("127.0.0.1", port))
        transport.send("a", "b", Heartbeat(nonce=1), 56)

        deadline = asyncio.get_event_loop().time() + 5
        while (
            transport.reconnect_attempts < 2
            and asyncio.get_event_loop().time() < deadline
        ):
            await asyncio.sleep(0.02)
        assert transport.reconnect_attempts >= 2
        dump = registry.dump()
        totals = {e["name"]: e["total"] for e in dump["counters"]}
        assert totals["transport_reconnects"] >= 2
        await transport.stop()

    run(main())


def test_queue_wait_traced_and_measured_for_msg_id_payloads():
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.paxos.messages import Propose
    from repro.paxos.types import AppValue

    class _ListSink:
        def __init__(self):
            self.events = []

        def record(self, event):
            self.events.append(event)

        def close(self):
            pass

    class Receiver(Actor):
        def __init__(self, env, network, name):
            super().__init__(env, network, name)
            self.tokens = []

        def on_propose(self, msg, src):
            self.tokens.append(msg.token)

    async def main():
        sink = _ListSink()
        tracer = Tracer(sinks=[sink], categories=frozenset({"transport"}))
        registry = MetricsRegistry()
        kernel = AsyncioKernel(tracer=tracer, metrics=registry)
        transport = TcpTransport(kernel, node="n1")
        receiver = Receiver(kernel, transport, "b")
        await transport.start()
        receiver.start()
        token = AppValue(payload="x", size=16, msg_id=7)
        transport.send("a", "b", Propose(stream="S1", token=token), 64)
        # Heartbeats carry no msg_id: dequeued silently, never traced.
        transport.send("a", "b", Heartbeat(nonce=1), 56)
        assert await eventually(lambda: len(receiver.tokens) == 1)
        waits = [
            e for e in sink.events if e["kind"] == "transport.queue_wait"
        ]
        assert len(waits) == 1
        assert waits[0]["msg_id"] == 7
        assert waits[0]["dst"] == "b"
        assert waits[0]["wait"] >= 0.0
        dump = registry.dump()
        (hist,) = [
            h for h in dump["histograms"] if h["name"] == "queue_wait_ms"
        ]
        assert hist["actor"] == "n1"
        assert hist["n"] == 1
        await transport.stop()

    run(main())


def test_no_queue_wait_tracking_untraced():
    async def main():
        kernel = AsyncioKernel()            # no tracer, no metrics
        transport = TcpTransport(kernel)
        assert transport._track_queue_wait is False
        ponger = Ponger(kernel, transport, "b")
        pinger = Pinger(kernel, transport, "a")
        await transport.start()
        ponger.start()
        pinger.start()
        pinger.send("b", Heartbeat(nonce=1))
        assert await eventually(lambda: len(pinger.acks) == 1)
        await transport.stop()

    run(main())
