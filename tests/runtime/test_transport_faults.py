"""Transport fault handling: reconnect caps and socket-level partitions.

The reconnect-forever loop of PR 6 was fine when every peer eventually
came back on the same port; a multi-process deployment has peers that
die for good (kill -9) and return on a *different* port.  These tests
pin the new behaviour: a link parks as unreachable after a bounded
number of failed connects, drops its backlog visibly, revives on
``register_address``, and ``set_partition`` drops traffic in both
directions without touching connection state.
"""

from __future__ import annotations

import asyncio
import socket

from repro.net.actor import Actor
from repro.paxos.messages import Heartbeat, HeartbeatAck
from repro.runtime.asyncio_kernel import AsyncioKernel
from repro.runtime.transport import TcpTransport


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=20))


async def eventually(predicate, timeout=8.0, interval=0.01):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def dead_port() -> int:
    """A port that was just free -- nothing listens there."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Ponger(Actor):
    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.seen = []

    def on_heartbeat(self, msg, src):
        self.seen.append(msg.nonce)
        self.send(src, HeartbeatAck(nonce=msg.nonce))


class Pinger(Actor):
    def __init__(self, env, network, name):
        super().__init__(env, network, name)
        self.acks = []

    def on_heartbeat_ack(self, msg, src):
        self.acks.append(msg.nonce)


def test_reconnect_cap_parks_link_and_drops_backlog():
    async def main():
        kernel = AsyncioKernel()
        transport = TcpTransport(kernel, unreachable_after=3)
        await transport.start()
        # A known address with nothing behind it: the permanently dead
        # peer.  Every connect attempt fails with ECONNREFUSED.
        transport.register_address("b", ("127.0.0.1", dead_port()))
        transport.send("a", "b", Heartbeat(nonce=0), 56)
        # Let the writer pull its first burst and block in connect, so
        # the next sends build a genuine backlog in the queue.
        await asyncio.sleep(0.02)
        for nonce in range(1, 6):
            transport.send("a", "b", Heartbeat(nonce=nonce), 56)
        assert await eventually(
            lambda: transport.unreachable_peers() == ["b"]
        )
        counters = transport.counters()
        assert counters["peers_parked"] == 1
        assert counters["peers_unreachable"] == 1
        # The queued backlog died with the peer (the in-flight burst the
        # writer already held is retried on revival instead).
        assert counters["dropped_unreachable"] >= 5
        # New sends to a parked peer drop immediately, without queueing.
        before = transport.counters()["dropped_unreachable"]
        transport.send("a", "b", Heartbeat(nonce=99), 56)
        assert transport.counters()["dropped_unreachable"] == before + 1
        assert transport.queue_depths().get("b", 0) == 0
        await transport.stop()

    run(main())


def test_register_address_revives_parked_link():
    async def main():
        kernel = AsyncioKernel()
        sender = TcpTransport(kernel, unreachable_after=2)
        await sender.start()
        sender.register_address("b", ("127.0.0.1", dead_port()))
        sender.send("a", "b", Heartbeat(nonce=0), 56)
        assert await eventually(lambda: sender.unreachable_peers() == ["b"])

        # The peer comes back -- in deployment terms, the supervisor
        # restarted the worker and re-broadcast its fresh port.
        receiver = TcpTransport(kernel)
        ponger = Ponger(kernel, receiver, "b")
        await receiver.start()
        ponger.start()
        sender.register_address("b", receiver.address)
        assert await eventually(lambda: sender.unreachable_peers() == [])
        sender.send("a", "b", Heartbeat(nonce=7), 56)
        assert await eventually(lambda: 7 in ponger.seen)
        ponger.stop()
        await sender.stop()
        await receiver.stop()

    run(main())


def test_partition_drops_outbound_and_inbound():
    async def main():
        kernel = AsyncioKernel()
        left = TcpTransport(kernel)
        right = TcpTransport(kernel)
        pinger = Pinger(kernel, left, "a")
        ponger = Ponger(kernel, right, "b")
        await left.start()
        await right.start()
        left.register_address("b", right.address)
        right.register_address("a", left.address)
        pinger.start()
        ponger.start()
        pinger.send("b", Heartbeat(nonce=1))
        assert await eventually(lambda: pinger.acks == [1])

        # Outbound: the sender's side of the cut drops before queueing.
        left.set_partition(["b"])
        assert left.partitioned_peers() == ["b"]
        pinger.send("b", Heartbeat(nonce=2))
        assert left.counters()["dropped_partition"] == 1
        await asyncio.sleep(0.1)
        assert 2 not in ponger.seen

        # Inbound: a one-sided cut on the receiver kills frames that
        # were already in flight when the cut landed.
        left.set_partition(["b"], blocked=False)
        right.set_partition(["a"])
        pinger.send("b", Heartbeat(nonce=3))
        assert await eventually(
            lambda: right.counters()["dropped_partition"] >= 1
        )
        assert 3 not in ponger.seen

        # Heal: traffic resumes on the same connections.
        right.set_partition(["a"], blocked=False)
        assert right.partitioned_peers() == []
        pinger.send("b", Heartbeat(nonce=4))
        assert await eventually(lambda: 4 in pinger.acks)
        pinger.stop()
        ponger.stop()
        await left.stop()
        await right.stop()

    run(main())
