"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1.5)
        log.append(env.now)
        yield env.timeout(0.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [1.5, 2.0]


def test_same_instant_events_fire_in_fifo_order():
    env = Environment()
    log = []

    def proc(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(0.3)

    env.process(proc())
    env.run(until=1.0)
    assert env.now == 1.0


def test_run_until_in_past_raises():
    env = Environment()
    env.run(until=1.0)
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_process_return_value_propagates_to_waiter():
    env = Environment()
    results = []

    def child():
        yield env.timeout(1)
        return 42

    def parent():
        value = yield env.process(child())
        results.append(value)

    env.process(parent())
    env.run()
    assert results == [42]


def test_exception_in_child_propagates_to_parent():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise RuntimeError("boom")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["boom"]


def test_uncaught_exception_crashes_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(proc):
        yield env.timeout(2)
        proc.interrupt("crash")

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert log == [(2, "crash")]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def victim():
        yield env.timeout(1)

    p = env.process(victim())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(3)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(3, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed("v")
    log = []

    def waiter():
        yield env.timeout(1)  # gate is processed by then
        value = yield gate
        log.append((env.now, value))

    env.process(waiter())
    env.run()
    assert log == [(1, "v")]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(2, value="fast")
        result = yield AnyOf(env, [t1, t2])
        log.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert log == [(2, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(2, value="fast")
        result = yield AllOf(env, [t1, t2])
        log.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert log == [(5, ["fast", "slow"])]


def test_yield_non_event_fails_process():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4
