"""Unit tests for measurement probes."""

import pytest

from repro.sim import Counter, Environment, Series, UtilisationProbe, percentile


def test_percentile_nearest_rank():
    samples = list(range(1, 101))
    assert percentile(samples, 95) == 95
    assert percentile(samples, 100) == 100
    assert percentile(samples, 1) == 1


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 95)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1], 0)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_counter_interval_rates():
    env = Environment()
    counter = Counter(env)

    def proc():
        for _ in range(10):
            counter.record()
            yield env.timeout(0.1)
        yield env.timeout(0.5)
        counter.record(weight=5)  # lands at t=1.5, inside [1.0, 2.0)

    env.process(proc())
    env.run()
    rates = counter.interval_rates(1.0, start=0.0, end=2.0)
    assert rates[0] == (0.0, pytest.approx(10.0))
    assert rates[1] == (1.0, pytest.approx(5.0))
    assert counter.total == 15


def test_counter_rate_between_validates_bounds():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.rate_between(1.0, 1.0)


def test_series_between_and_percentile():
    env = Environment()
    series = Series(env)

    def proc():
        for v in (1.0, 2.0, 3.0, 4.0):
            series.record(v)
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert series.between(1.0, 3.0) == [2.0, 3.0]
    assert series.percentile(50) == 2.0
    assert series.mean() == pytest.approx(2.5)
    assert len(series) == 4


def test_series_empty_mean_raises():
    env = Environment()
    series = Series(env)
    with pytest.raises(ValueError):
        series.mean()


def test_utilisation_probe_integrates_busy_time():
    env = Environment()
    probe = UtilisationProbe(env)

    def proc():
        probe.busy()
        yield env.timeout(2.0)
        probe.idle()
        yield env.timeout(2.0)

    env.process(proc())
    env.run()
    assert probe.utilisation_between(0.0, 4.0) == pytest.approx(0.5)


def test_utilisation_probe_open_episode_counts():
    env = Environment()
    probe = UtilisationProbe(env)
    probe.busy()
    env.run(until=2.0)
    assert probe.utilisation_between(0.0, 2.0) == pytest.approx(1.0)


def test_interval_utilisation_points():
    env = Environment()
    probe = UtilisationProbe(env)

    def proc():
        probe.busy()
        yield env.timeout(1.0)
        probe.idle()

    env.process(proc())
    env.run(until=2.0)
    points = probe.interval_utilisation(1.0, start=0.0, end=2.0)
    assert points == [(0.0, pytest.approx(1.0)), (1.0, pytest.approx(0.0))]


# -- retention bounds (window / max_samples) ---------------------------------


def test_counter_window_evicts_old_samples():
    env = Environment()
    counter = Counter(env, window=1.0)

    def proc():
        for _ in range(4):
            counter.record()
            yield env.timeout(0.5)

    env.process(proc())
    env.run()
    # Retention is evaluated at *read* time: the run ends at t=2.0, so
    # the samples at t=0.0 and t=0.5 fell out of the [1.0, 2.0] window
    # (a sample exactly at the window edge is retained).
    assert len(counter) == 2
    assert counter.total == 4                       # lifetime, not windowed
    assert counter.rate_between(1.0, 2.0) == pytest.approx(2.0)
    # The evicted interval reports no occurrences, never stale ones.
    assert counter.rate_between(0.0, 1.0) == 0.0


def test_counter_max_samples_keeps_newest():
    env = Environment()
    counter = Counter(env, max_samples=3)
    for _ in range(10):
        counter.record()
    assert len(counter) == 3
    assert counter.total == 10


def test_series_window_and_max_samples_compose():
    env = Environment()
    series = Series(env, window=10.0, max_samples=2)

    def proc():
        for v in (1.0, 2.0, 3.0):
            series.record(v)
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert series.values == (2.0, 3.0)              # count bound is tighter
    assert series.times == (1.0, 2.0)
    assert series.percentile(100) == 3.0
    assert series.mean() == pytest.approx(2.5)


def test_series_windowed_between_sees_only_retained():
    env = Environment()
    series = Series(env, window=0.9)

    def proc():
        for v in (1.0, 2.0, 3.0):
            series.record(v)
            yield env.timeout(0.5)

    env.process(proc())
    env.run()
    # Read-time retention: the run ends at t=1.5, so only the sample
    # at t=1.0 is still inside the 0.9 s window.
    assert series.between(0.0, 2.0) == [3.0]


def test_bounded_compaction_keeps_answers_correct():
    # Push far past the compaction threshold; the logical view must be
    # unaffected by the physical list compactions along the way.
    env = Environment()
    series = Series(env, max_samples=10)
    for i in range(3000):
        series.record(float(i))
    assert len(series) == 10
    assert series.values == tuple(float(i) for i in range(2990, 3000))
    # The dead prefix was actually compacted away, not just skipped.
    assert len(series._times) < 3000


def test_retention_bounds_validated():
    env = Environment()
    with pytest.raises(ValueError):
        Counter(env, window=0.0)
    with pytest.raises(ValueError):
        Series(env, max_samples=0)


# -- edge cases --------------------------------------------------------------


def test_interval_rates_empty_intervals_report_zero():
    env = Environment()
    counter = Counter(env)

    def proc():
        yield env.timeout(2.5)
        counter.record()

    env.process(proc())
    env.run()
    rates = counter.interval_rates(1.0, start=0.0, end=3.0)
    assert rates == [
        (0.0, 0.0),
        (1.0, 0.0),
        (2.0, pytest.approx(1.0)),
    ]


def test_interval_rates_of_empty_counter():
    env = Environment()
    counter = Counter(env)
    assert counter.interval_rates(1.0, start=0.0, end=2.0) == [
        (0.0, 0.0), (1.0, 0.0),
    ]
    # With no explicit end and env.now == 0, there are no intervals.
    assert counter.interval_rates(1.0) == []


def test_interval_rates_partial_final_interval():
    env = Environment()
    counter = Counter(env)
    counter.record(weight=3)
    env.run(until=0.5)
    # Final interval is [0.0, 0.5): the rate reflects the short width.
    rates = counter.interval_rates(1.0, start=0.0, end=0.5)
    assert rates == [(0.0, pytest.approx(6.0))]


def test_interval_rates_rejects_bad_interval():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.interval_rates(0.0)


def test_percentile_single_sample_any_pct():
    assert percentile([7.0], 0.001) == 7.0
    assert percentile([7.0], 100) == 7.0


def test_utilisation_between_spanning_zero_episodes():
    env = Environment()
    probe = UtilisationProbe(env)

    def proc():
        probe.busy()
        yield env.timeout(1.0)
        probe.idle()
        yield env.timeout(3.0)

    env.process(proc())
    env.run()
    # The queried window lies entirely after the only busy episode.
    assert probe.utilisation_between(2.0, 4.0) == 0.0


def test_utilisation_probe_idempotent_marks():
    env = Environment()
    probe = UtilisationProbe(env)
    probe.idle()                       # idle while already idle: no-op
    probe.busy()
    probe.busy()                       # busy while already busy: no-op
    env.run(until=1.0)
    assert probe.utilisation_between(0.0, 1.0) == pytest.approx(1.0)


def test_utilisation_between_rejects_empty_window():
    env = Environment()
    probe = UtilisationProbe(env)
    with pytest.raises(ValueError):
        probe.utilisation_between(1.0, 1.0)
