"""Unit tests for measurement probes."""

import pytest

from repro.sim import Counter, Environment, Series, UtilisationProbe, percentile


def test_percentile_nearest_rank():
    samples = list(range(1, 101))
    assert percentile(samples, 95) == 95
    assert percentile(samples, 100) == 100
    assert percentile(samples, 1) == 1


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 95)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1], 0)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_counter_interval_rates():
    env = Environment()
    counter = Counter(env)

    def proc():
        for _ in range(10):
            counter.record()
            yield env.timeout(0.1)
        yield env.timeout(0.5)
        counter.record(weight=5)  # lands at t=1.5, inside [1.0, 2.0)

    env.process(proc())
    env.run()
    rates = counter.interval_rates(1.0, start=0.0, end=2.0)
    assert rates[0] == (0.0, pytest.approx(10.0))
    assert rates[1] == (1.0, pytest.approx(5.0))
    assert counter.total == 15


def test_counter_rate_between_validates_bounds():
    env = Environment()
    counter = Counter(env)
    with pytest.raises(ValueError):
        counter.rate_between(1.0, 1.0)


def test_series_between_and_percentile():
    env = Environment()
    series = Series(env)

    def proc():
        for v in (1.0, 2.0, 3.0, 4.0):
            series.record(v)
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert series.between(1.0, 3.0) == [2.0, 3.0]
    assert series.percentile(50) == 2.0
    assert series.mean() == pytest.approx(2.5)
    assert len(series) == 4


def test_series_empty_mean_raises():
    env = Environment()
    series = Series(env)
    with pytest.raises(ValueError):
        series.mean()


def test_utilisation_probe_integrates_busy_time():
    env = Environment()
    probe = UtilisationProbe(env)

    def proc():
        probe.busy()
        yield env.timeout(2.0)
        probe.idle()
        yield env.timeout(2.0)

    env.process(proc())
    env.run()
    assert probe.utilisation_between(0.0, 4.0) == pytest.approx(0.5)


def test_utilisation_probe_open_episode_counts():
    env = Environment()
    probe = UtilisationProbe(env)
    probe.busy()
    env.run(until=2.0)
    assert probe.utilisation_between(0.0, 2.0) == pytest.approx(1.0)


def test_interval_utilisation_points():
    env = Environment()
    probe = UtilisationProbe(env)

    def proc():
        probe.busy()
        yield env.timeout(1.0)
        probe.idle()

    env.process(proc())
    env.run(until=2.0)
    points = probe.interval_utilisation(1.0, start=0.0, end=2.0)
    assert points == [(0.0, pytest.approx(1.0)), (1.0, pytest.approx(0.0))]
