"""Unit tests for the network model."""

import pytest

from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_net(**kwargs):
    env = Environment()
    net = Network(env, rng=RngRegistry(7), **kwargs)
    for name in ("a", "b", "c"):
        net.add_host(name)
    return env, net


def test_message_arrives_after_latency():
    env, net = make_net(default_link=LinkSpec(latency=0.01))
    net.send("a", "b", "hello", size=10)
    env.run()
    inbox = net.host("b").inbox
    assert len(inbox) == 1
    envelope = inbox.items[0]
    assert envelope.payload == "hello"
    assert envelope.delivered_at == pytest.approx(0.01)


def test_bandwidth_serialises_messages():
    env, net = make_net(default_link=LinkSpec(latency=0.0, bandwidth=100.0))
    net.send("a", "b", "m1", size=100)  # 1 second of tx time
    net.send("a", "b", "m2", size=100)  # queued behind m1
    env.run()
    arrivals = [e.delivered_at for e in net.host("b").inbox.items]
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]


def test_per_link_fifo_even_with_jitter():
    env, net = make_net(default_link=LinkSpec(latency=0.001, jitter=0.05))
    for i in range(50):
        net.send("a", "b", i, size=1)
    env.run()
    payloads = [e.payload for e in net.host("b").inbox.items]
    assert payloads == list(range(50))


def test_crashed_receiver_drops_messages():
    env, net = make_net()
    net.host("b").crash()
    net.send("a", "b", "lost")
    env.run()
    assert len(net.host("b").inbox) == 0
    assert net.messages_dropped == 1


def test_recovered_host_receives_again():
    env, net = make_net()
    net.host("b").crash()
    net.send("a", "b", "lost")
    env.run()
    net.host("b").recover()
    net.send("a", "b", "found")
    env.run()
    assert [e.payload for e in net.host("b").inbox.items] == ["found"]


def test_partition_blocks_both_directions():
    env, net = make_net()
    net.partition({"a"}, {"b"})
    net.send("a", "b", "x")
    net.send("b", "a", "y")
    env.run()
    assert len(net.host("a").inbox) == 0
    assert len(net.host("b").inbox) == 0
    assert net.messages_dropped == 2


def test_heal_restores_connectivity():
    env, net = make_net()
    net.partition({"a"}, {"b"})
    net.heal()
    net.send("a", "b", "x")
    env.run()
    assert len(net.host("b").inbox) == 1


def test_lossy_link_drops_some_messages():
    env, net = make_net()
    net.set_link("a", "b", LinkSpec(latency=0.001, loss=0.5))
    for i in range(200):
        net.send("a", "b", i)
    env.run()
    delivered = len(net.host("b").inbox)
    assert 0 < delivered < 200


def test_broadcast_reaches_all_destinations():
    env, net = make_net()
    net.broadcast("a", ["b", "c"], "hi")
    env.run()
    assert len(net.host("b").inbox) == 1
    assert len(net.host("c").inbox) == 1


def test_unknown_host_raises():
    env, net = make_net()
    with pytest.raises(KeyError):
        net.send("a", "zz", "x")


def test_crash_clears_pending_inbox():
    env, net = make_net()
    net.send("a", "b", "x")
    env.run()
    assert len(net.host("b").inbox) == 1
    net.host("b").crash()
    assert len(net.host("b").inbox) == 0


def test_message_counters():
    env, net = make_net()
    net.send("a", "b", "x", size=100)
    net.send("a", "c", "y", size=50)
    env.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 2
    assert net.bytes_delivered == 150


# -- partitions vs in-flight traffic -----------------------------------


def test_healed_partition_flushes_no_stale_envelopes():
    """A message in flight when the partition forms must not pop out of
    the link after the heal: it was dropped, and post-heal traffic
    arrives in clean FIFO order with nothing stale in front of it."""
    env, net = make_net(default_link=LinkSpec(latency=0.01))
    net.send("a", "b", "in-flight")          # arrives t=0.01 ...
    env.run(until=0.005)
    net.partition({"a"}, {"b"})              # ... but the cut forms first
    env.run(until=0.02)
    assert len(net.host("b").inbox) == 0     # dropped at delivery time
    assert net.messages_dropped == 1

    net.unpartition({"a"}, {"b"})
    for i in range(5):
        net.send("a", "b", i)
    env.run()
    payloads = [e.payload for e in net.host("b").inbox.items]
    assert payloads == list(range(5))        # FIFO, no stale envelope


def test_unpartition_is_selective():
    env, net = make_net()
    net.partition({"a"}, {"b"})
    net.partition({"a"}, {"c"})
    net.unpartition({"a"}, {"b"})
    net.send("a", "b", "through")
    net.send("a", "c", "blocked")
    env.run()
    assert len(net.host("b").inbox) == 1
    assert len(net.host("c").inbox) == 0
    assert net.is_partitioned("a", "c")
    assert not net.is_partitioned("a", "b")


# -- crash/reboot vs in-flight traffic ---------------------------------


def test_stale_envelope_dropped_across_reboot():
    """An envelope in flight when the receiver crashes must not land in
    the rebooted host's fresh inbox: the old incarnation's connections
    died with it."""
    env, net = make_net(default_link=LinkSpec(latency=0.01))
    net.send("a", "b", "stale")              # arrives t=0.01
    env.run(until=0.005)
    net.host("b").crash()
    net.host("b").recover()                  # reboot completes before arrival
    env.run(until=0.02)
    assert len(net.host("b").inbox) == 0
    assert net.messages_dropped == 1

    net.send("a", "b", "fresh")              # new incarnation's traffic flows
    env.run()
    assert [e.payload for e in net.host("b").inbox.items] == ["fresh"]


# -- fault-rule overlays -----------------------------------------------


def test_fault_rule_selectors():
    from repro.sim.network import FaultRule

    rule = FaultRule(src="a", dst=("b", "c"), loss=1.0)
    assert rule.matches("a", "b")
    assert rule.matches("a", "c")
    assert not rule.matches("b", "a")
    assert not rule.matches("c", "b")
    anywhere = FaultRule(loss=1.0)
    assert anywhere.matches("a", "b")
    assert anywhere.matches("x", "y")


def test_loss_window_installs_and_removes():
    from repro.sim.network import FaultRule

    env, net = make_net()
    rule = net.add_fault(FaultRule(src="a", dst="b", loss=1.0))
    net.send("a", "b", "lost")
    net.send("a", "c", "other-link")         # rule does not match
    env.run()
    assert len(net.host("b").inbox) == 0
    assert len(net.host("c").inbox) == 1

    net.remove_fault(rule)
    net.send("a", "b", "after")
    env.run()
    assert [e.payload for e in net.host("b").inbox.items] == ["after"]


def test_delay_spike_adds_latency():
    from repro.sim.network import FaultRule

    env, net = make_net(default_link=LinkSpec(latency=0.001))
    net.add_fault(FaultRule(extra_latency=0.05))
    net.send("a", "b", "slow")
    env.run()
    envelope = net.host("b").inbox.items[0]
    assert envelope.delivered_at == pytest.approx(0.051)


def test_duplicate_rule_delivers_second_copy():
    from repro.sim.network import FaultRule

    env, net = make_net(default_link=LinkSpec(latency=0.001))
    net.add_fault(FaultRule(duplicate=1.0))
    net.send("a", "b", "twice")
    env.run()
    items = net.host("b").inbox.items
    assert [e.payload for e in items] == ["twice", "twice"]
    assert [e.duplicated for e in items] == [False, True]
    assert net.messages_duplicated == 1
    assert net.messages_delivered == 2


def test_reorder_rule_bypasses_fifo():
    from repro.sim.network import FaultRule

    env, net = make_net(default_link=LinkSpec(latency=0.001))
    net.add_fault(FaultRule(reorder=1.0, reorder_spread=0.05))
    for i in range(50):
        net.send("a", "b", i)
    env.run()
    payloads = [e.payload for e in net.host("b").inbox.items]
    assert sorted(payloads) == list(range(50))   # nothing lost ...
    assert payloads != list(range(50))           # ... but FIFO is broken
    assert net.messages_reordered == 50
