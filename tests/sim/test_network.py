"""Unit tests for the network model."""

import pytest

from repro.sim import Environment, LinkSpec, Network, RngRegistry


def make_net(**kwargs):
    env = Environment()
    net = Network(env, rng=RngRegistry(7), **kwargs)
    for name in ("a", "b", "c"):
        net.add_host(name)
    return env, net


def test_message_arrives_after_latency():
    env, net = make_net(default_link=LinkSpec(latency=0.01))
    net.send("a", "b", "hello", size=10)
    env.run()
    inbox = net.host("b").inbox
    assert len(inbox) == 1
    envelope = inbox.items[0]
    assert envelope.payload == "hello"
    assert envelope.delivered_at == pytest.approx(0.01)


def test_bandwidth_serialises_messages():
    env, net = make_net(default_link=LinkSpec(latency=0.0, bandwidth=100.0))
    net.send("a", "b", "m1", size=100)  # 1 second of tx time
    net.send("a", "b", "m2", size=100)  # queued behind m1
    env.run()
    arrivals = [e.delivered_at for e in net.host("b").inbox.items]
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]


def test_per_link_fifo_even_with_jitter():
    env, net = make_net(default_link=LinkSpec(latency=0.001, jitter=0.05))
    for i in range(50):
        net.send("a", "b", i, size=1)
    env.run()
    payloads = [e.payload for e in net.host("b").inbox.items]
    assert payloads == list(range(50))


def test_crashed_receiver_drops_messages():
    env, net = make_net()
    net.host("b").crash()
    net.send("a", "b", "lost")
    env.run()
    assert len(net.host("b").inbox) == 0
    assert net.messages_dropped == 1


def test_recovered_host_receives_again():
    env, net = make_net()
    net.host("b").crash()
    net.send("a", "b", "lost")
    env.run()
    net.host("b").recover()
    net.send("a", "b", "found")
    env.run()
    assert [e.payload for e in net.host("b").inbox.items] == ["found"]


def test_partition_blocks_both_directions():
    env, net = make_net()
    net.partition({"a"}, {"b"})
    net.send("a", "b", "x")
    net.send("b", "a", "y")
    env.run()
    assert len(net.host("a").inbox) == 0
    assert len(net.host("b").inbox) == 0
    assert net.messages_dropped == 2


def test_heal_restores_connectivity():
    env, net = make_net()
    net.partition({"a"}, {"b"})
    net.heal()
    net.send("a", "b", "x")
    env.run()
    assert len(net.host("b").inbox) == 1


def test_lossy_link_drops_some_messages():
    env, net = make_net()
    net.set_link("a", "b", LinkSpec(latency=0.001, loss=0.5))
    for i in range(200):
        net.send("a", "b", i)
    env.run()
    delivered = len(net.host("b").inbox)
    assert 0 < delivered < 200


def test_broadcast_reaches_all_destinations():
    env, net = make_net()
    net.broadcast("a", ["b", "c"], "hi")
    env.run()
    assert len(net.host("b").inbox) == 1
    assert len(net.host("c").inbox) == 1


def test_unknown_host_raises():
    env, net = make_net()
    with pytest.raises(KeyError):
        net.send("a", "zz", "x")


def test_crash_clears_pending_inbox():
    env, net = make_net()
    net.send("a", "b", "x")
    env.run()
    assert len(net.host("b").inbox) == 1
    net.host("b").crash()
    assert len(net.host("b").inbox) == 0


def test_message_counters():
    env, net = make_net()
    net.send("a", "b", "x", size=100)
    net.send("a", "c", "y", size=50)
    env.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 2
    assert net.bytes_delivered == 150
