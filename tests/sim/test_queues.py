"""Unit tests for the FIFO store."""

import pytest

from repro.sim import Environment, QueueFull, Store


def test_put_then_get_preserves_fifo():
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == [0, 1, 2]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        item = yield store.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(5)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(5, "x")]


def test_multiple_getters_served_in_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def consumer(name):
        item = yield store.get()
        out.append((name, item))

    def producer():
        yield env.timeout(1)
        yield store.put("first")
        yield store.put("second")

    env.process(consumer("a"))
    env.process(consumer("b"))
    env.process(producer())
    env.run()
    assert out == [("a", "first"), ("b", "second")]


def test_bounded_store_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("queued-1", env.now))
        yield store.put(2)
        log.append(("queued-2", env.now))

    def consumer():
        yield env.timeout(3)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("queued-1", 0) in log
    assert ("queued-2", 3) in log


def test_put_nowait_raises_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    store.put_nowait("a")
    with pytest.raises(QueueFull):
        store.put_nowait("b")


def test_put_nowait_hands_directly_to_waiting_getter():
    env = Environment()
    store = Store(env, capacity=1)
    out = []

    def consumer():
        item = yield store.get()
        out.append(item)

    env.process(consumer())
    env.run()
    store.put_nowait("direct")
    env.run()
    assert out == ["direct"]


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_len_and_items_snapshot():
    env = Environment()
    store = Store(env)
    store.put_nowait(1)
    store.put_nowait(2)
    assert len(store) == 2
    assert store.items == (1, 2)
