"""Unit tests for the Server capacity model."""

import pytest

from repro.sim import Environment
from repro.sim.resources import Server


def test_single_request_takes_cost_over_rate():
    env = Environment()
    server = Server(env, rate=10.0)
    done = []

    def proc():
        yield server.request(cost=1.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(0.1)]


def test_requests_queue_fifo():
    env = Environment()
    server = Server(env, rate=1.0)
    done = []

    def proc(name):
        yield server.request(cost=1.0)
        done.append((name, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_utilisation_reflects_busy_fraction():
    env = Environment()
    server = Server(env, rate=1.0)

    def proc():
        yield server.request(cost=2.0)

    env.process(proc())
    env.run(until=4.0)
    assert server.utilisation_between(0.0, 4.0) == pytest.approx(0.5)


def test_backlog_seconds():
    env = Environment()
    server = Server(env, rate=1.0)
    server.request(cost=3.0)
    assert server.backlog_seconds == pytest.approx(3.0)


def test_invalid_rate_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Server(env, rate=0)


def test_negative_cost_rejected():
    env = Environment()
    server = Server(env, rate=1.0)
    with pytest.raises(ValueError):
        server.request(cost=-1)


def test_completed_counter():
    env = Environment()
    server = Server(env, rate=100.0)
    for _ in range(5):
        server.request()
    env.run()
    assert server.completed == 5
