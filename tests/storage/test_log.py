"""Unit tests for the acceptor log."""

import pytest

from repro.storage import AcceptorLog, TrimError


def test_entry_created_on_demand():
    log = AcceptorLog()
    entry = log.entry(3)
    assert entry.vrnd == -1
    assert entry.value is None
    assert not entry.decided
    assert log.highest_instance == 3


def test_accept_records_ballot_and_value():
    log = AcceptorLog()
    log.accept(0, 5, "v")
    assert log.get(0).vrnd == 5
    assert log.get(0).value == "v"


def test_mark_decided_requires_value():
    log = AcceptorLog()
    log.entry(0)
    with pytest.raises(ValueError):
        log.mark_decided(0)
    log.accept(0, 1, "v")
    log.mark_decided(0)
    assert log.is_decided(0)
    assert log.decided_value(0) == "v"


def test_decided_value_of_unknown_instance_raises():
    log = AcceptorLog()
    with pytest.raises(KeyError):
        log.decided_value(7)


def test_trim_requires_decided_prefix():
    log = AcceptorLog()
    log.accept(0, 1, "a")
    log.mark_decided(0)
    log.accept(1, 1, "b")   # accepted but undecided
    with pytest.raises(TrimError):
        log.trim(2)
    log.trim(1)
    assert log.trimmed_below == 1
    assert len(log) == 1


def test_trimmed_instance_raises_on_access():
    log = AcceptorLog()
    log.accept(0, 1, "a")
    log.mark_decided(0)
    log.trim(1)
    with pytest.raises(TrimError):
        log.entry(0)
    with pytest.raises(TrimError):
        log.decided_value(0)


def test_trim_is_idempotent_and_monotonic():
    log = AcceptorLog()
    for i in range(4):
        log.accept(i, 1, i)
        log.mark_decided(i)
    assert log.trim(2) == 2
    assert log.trim(2) == 0
    assert log.trim(1) == 0          # going backwards is a no-op
    assert log.trimmed_below == 2


def test_decided_instances_sorted():
    log = AcceptorLog()
    for i in (3, 0, 2):
        log.accept(i, 1, i)
        log.mark_decided(i)
    assert log.decided_instances() == [0, 2, 3]
