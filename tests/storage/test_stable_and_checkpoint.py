"""Unit tests for stable storage and checkpoints."""

import pytest

from repro.sim import Environment
from repro.storage import CheckpointStore, StableStore


def test_memory_store_is_instantaneous():
    env = Environment()
    store = StableStore(env)
    assert store.is_instantaneous
    event = store.write(100)
    assert event.triggered
    assert store.writes == 1
    assert store.bytes_written == 100


def test_write_latency_delays_completion():
    env = Environment()
    store = StableStore(env, write_latency=0.01)
    done = []

    def proc():
        yield store.write(10)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(0.01)]


def test_bandwidth_serialises_writes():
    env = Environment()
    store = StableStore(env, write_latency=0.0, write_bandwidth=1000.0)
    done = []

    def proc(name):
        yield store.write(1000)   # 1 second each
        done.append((name, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done[0] == ("a", pytest.approx(1.0))
    assert done[1] == ("b", pytest.approx(2.0))


def test_negative_sizes_rejected():
    env = Environment()
    store = StableStore(env)
    with pytest.raises(ValueError):
        store.write(-1)
    with pytest.raises(ValueError):
        StableStore(env, write_latency=-0.1)


def test_checkpoint_save_and_latest():
    store = CheckpointStore()
    assert store.latest() is None
    store.save(10, {"a": 1})
    checkpoint = store.save(20, {"a": 2})
    assert store.latest() is checkpoint
    assert store.latest().position == 20
    assert store.safe_trim_position == 20


def test_checkpoint_state_is_deep_copied():
    store = CheckpointStore()
    state = {"a": [1]}
    store.save(1, state)
    state["a"].append(2)
    assert store.latest().state == {"a": [1]}


def test_checkpoint_position_monotonic():
    store = CheckpointStore()
    store.save(10, {})
    with pytest.raises(ValueError):
        store.save(5, {})


def test_checkpoint_retention():
    store = CheckpointStore(keep=2)
    for position in (1, 2, 3, 4):
        store.save(position, {})
    assert len(store) == 2
    assert store.latest().position == 4


def test_checkpoint_keep_validation():
    with pytest.raises(ValueError):
        CheckpointStore(keep=0)
