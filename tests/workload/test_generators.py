"""Unit tests for workload generation."""

import random

import pytest

from repro.workload import KeyspaceWorkload, key_name, zipf_shares


def test_key_name_fixed_width_sorted():
    assert key_name(42) == "key-00000042"
    keys = [key_name(i) for i in range(1000)]
    assert keys == sorted(keys)


def test_all_puts_workload():
    workload = KeyspaceWorkload(n_keys=10, value_size=256, put_fraction=1.0)
    rng = random.Random(1)
    for _ in range(50):
        spec = workload.next_command(rng)
        assert spec[0] == "put"
        assert spec[2] == 256


def test_mixed_workload_fractions():
    workload = KeyspaceWorkload(
        n_keys=100, put_fraction=0.5, range_fraction=0.2
    )
    rng = random.Random(2)
    kinds = [workload.next_command(rng)[0] for _ in range(5000)]
    puts = kinds.count("put") / len(kinds)
    ranges = kinds.count("range") / len(kinds)
    gets = kinds.count("get") / len(kinds)
    assert puts == pytest.approx(0.5, abs=0.05)
    assert ranges == pytest.approx(0.2, abs=0.03)
    assert gets == pytest.approx(0.3, abs=0.05)


def test_range_spans_requested_keys():
    workload = KeyspaceWorkload(
        n_keys=1000, put_fraction=0.0, range_fraction=1.0, range_span=7
    )
    rng = random.Random(3)
    _kind, start, end = workload.next_command(rng)
    assert start < end
    assert int(end[4:]) - int(start[4:]) == 7


def test_keys_stay_in_keyspace():
    workload = KeyspaceWorkload(n_keys=5, put_fraction=1.0)
    rng = random.Random(4)
    for _ in range(100):
        _k, key, _s = workload.next_command(rng)
        assert 0 <= int(key[4:]) < 5


def test_parameter_validation():
    with pytest.raises(ValueError):
        KeyspaceWorkload(n_keys=0)
    with pytest.raises(ValueError):
        KeyspaceWorkload(put_fraction=1.5)
    with pytest.raises(ValueError):
        KeyspaceWorkload(put_fraction=0.8, range_fraction=0.3)
    with pytest.raises(ValueError):
        KeyspaceWorkload(zipf_s=-1.0)


def test_zipfian_skews_towards_low_ranks():
    workload = KeyspaceWorkload(n_keys=1000, put_fraction=1.0, zipf_s=0.99)
    rng = random.Random(7)
    counts = {}
    for _ in range(5000):
        _k, key, _s = workload.next_command(rng)
        counts[key] = counts.get(key, 0) + 1
    hottest = max(counts.values())
    # Rank-0 under s≈1 over 1000 keys takes ~13% of the mass; uniform
    # would give 0.1%.
    assert hottest > 200
    assert counts.get("key-00000000", 0) == hottest


def test_zipf_zero_is_uniform():
    workload = KeyspaceWorkload(n_keys=100, put_fraction=1.0, zipf_s=0.0)
    rng = random.Random(8)
    counts = {}
    for _ in range(10_000):
        _k, key, _s = workload.next_command(rng)
        counts[key] = counts.get(key, 0) + 1
    assert max(counts.values()) < 3 * min(counts.values())


def test_zipf_shares_normalised_and_decreasing():
    shares = zipf_shares(8, 1.8)
    assert len(shares) == 8
    assert abs(sum(shares) - 1.0) < 1e-12
    assert all(a > b for a, b in zip(shares, shares[1:]))
    # s=0 is uniform; a single rank takes everything.
    assert zipf_shares(4, 0.0) == (0.25, 0.25, 0.25, 0.25)
    assert zipf_shares(1, 1.8) == (1.0,)


def test_zipf_shares_validation():
    with pytest.raises(ValueError):
        zipf_shares(0, 1.0)
    with pytest.raises(ValueError):
        zipf_shares(4, -0.1)
